"""Typed progress events emitted by an analysis campaign.

The analyzer used to narrate its progress through an opaque
``Callable[[str], None]`` — fine for a terminal, useless for anything
that wants to *react* to progress (stream it as JSON, update a UI,
aggregate engine statistics across a fan-out). This module replaces
that callback with a small algebra of frozen event dataclasses, one
per analysis milestone:

========================  ====================================================
event                     milestone
========================  ====================================================
:class:`AnalysisStarted`  the campaign accepted one (app, workload) pair
:class:`BaselineStarted`  passthrough replication begins
:class:`FeaturesEnumerated`  tracing finished; the probe list is known
:class:`FeatureProbed`    one feature's stub/fake verdict is in
:class:`CombinedRunFinished`  a combined confirmation run concluded
:class:`ConflictBisected` ddmin isolated one minimal conflicting set
:class:`ProbeRetry`       a faulted run attempt is about to be retried
:class:`ProbeFaulted`     a run exhausted its attempts and was quarantined
:class:`PoolRecovered`    a crashed process pool was rebuilt mid-batch
:class:`FaultsSummary`    end-of-campaign quarantine list (non-empty only)
:class:`EngineStatsEvent` the probe engine's final run accounting
:class:`StoreStatsEvent`  persistent run-cache store state (session-emitted)
:class:`AnalysisFinished` wall-clock total for the analysis
:class:`AnalysisCancelled`  the campaign stopped at a cancel checkpoint
:class:`TargetStarted`    multi-target fan-out: one target's campaign begins
:class:`TargetFinished`   multi-target fan-out: one target's campaign is done
:class:`CrossValidationReady`  the cross-backend divergence report is built
========================  ====================================================

Every event serializes with :meth:`AnalysisEvent.to_dict` (one JSON
object per event — the CLI's ``--events jsonl`` stream) and renders
back to the exact legacy progress string with
:meth:`AnalysisEvent.legacy_line`, so :func:`legacy_adapter` keeps
every pre-event caller (and the CLI output) byte-identical.

Every event additionally carries a ``backend`` field. In a
single-target campaign it stays empty (and is omitted from the JSON
form, keeping the historical stream byte-identical); a multi-target
fan-out stamps each target's registry name onto its events via
:func:`tag_backend`, so one interleaved session stream stays
attributable per target.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Iterable
from typing import ClassVar

from repro.core.cachestore import StoreStats
from repro.core.engine import EngineStats

#: A consumer of analysis events.
EventCallback = Callable[["AnalysisEvent"], None]


@dataclasses.dataclass(frozen=True)
class AnalysisEvent:
    """Base class of every analysis progress event.

    Every concrete event carries the ``app`` identity of the analysis
    it belongs to (the analyzer stamps it via :func:`tag_app`), so a
    session-level stream stays attributable when
    ``analyze_many(jobs>1)`` interleaves events from concurrent
    analyses on one callback. Events of a multi-target fan-out
    additionally carry the target's registry ``backend`` name
    (stamped via :func:`tag_backend`).
    """

    #: Stable machine-readable discriminator (the ``"event"`` field of
    #: the JSON form). Never rename once released.
    kind: ClassVar[str] = "event"

    def to_dict(self) -> dict:
        """JSON-serializable form: ``{"event": kind, ...fields}``.

        An empty ``backend`` tag is omitted: single-target campaigns
        never stamp one, and dropping the empty field keeps their
        JSON stream byte-identical to the pre-fan-out format.
        """
        data = dataclasses.asdict(self)
        if data.get("backend", None) == "":
            del data["backend"]
        return {"event": self.kind, **data}

    def legacy_line(self) -> "str | None":
        """The pre-event progress string, or ``None`` for events the
        string protocol never reported."""
        return None


@dataclasses.dataclass(frozen=True)
class AnalysisStarted(AnalysisEvent):
    """The session accepted one (app, workload, backend) analysis."""

    kind: ClassVar[str] = "analysis_started"

    app: str
    workload: str
    backend: str
    replicas: int


@dataclasses.dataclass(frozen=True)
class BaselineStarted(AnalysisEvent):
    """Passthrough baseline replication is about to run."""

    kind: ClassVar[str] = "baseline_started"

    replicas: int
    app: str = ""
    backend: str = ""

    def legacy_line(self) -> str:
        return f"baseline: {self.replicas} passthrough replica(s)"


@dataclasses.dataclass(frozen=True)
class FeaturesEnumerated(AnalysisEvent):
    """Baseline tracing finished; these features will be probed."""

    kind: ClassVar[str] = "features_enumerated"

    count: int
    features: tuple[str, ...] = ()
    app: str = ""
    backend: str = ""

    def legacy_line(self) -> str:
        return f"tracing found {self.count} feature(s) to probe"


@dataclasses.dataclass(frozen=True)
class FeatureProbed(AnalysisEvent):
    """Stub and fake probes of one feature concluded."""

    kind: ClassVar[str] = "feature_probed"

    feature: str
    can_stub: bool
    can_fake: bool
    traced_count: int = 0
    app: str = ""
    backend: str = ""

    def legacy_line(self) -> str:
        return (
            f"probe {self.feature}: "
            f"stub={'ok' if self.can_stub else 'no'} "
            f"fake={'ok' if self.can_fake else 'no'}"
        )


@dataclasses.dataclass(frozen=True)
class CombinedRunFinished(AnalysisEvent):
    """One round of the combined confirmation run concluded.

    ``avoided`` is the size of the stub/fake set under test; ``0``
    means nothing was avoidable, so no combined run was necessary and
    the round succeeded vacuously. ``round`` is 1-based.
    """

    kind: ClassVar[str] = "combined_run_finished"

    ok: bool
    avoided: int
    round: int
    app: str = ""
    backend: str = ""

    def legacy_line(self) -> "str | None":
        if self.ok:
            if self.avoided == 0:
                return None  # legacy code said nothing for a vacuous pass
            return f"final combined run ok ({self.avoided} features avoided)"
        return f"final combined run failed (round {self.round}); bisecting"


@dataclasses.dataclass(frozen=True)
class ConflictBisected(AnalysisEvent):
    """ddmin isolated one minimal conflicting feature set (its members
    are demoted to REQUIRED before the next confirmation round)."""

    kind: ClassVar[str] = "conflict_bisected"

    round: int
    conflict: tuple[str, ...]
    app: str = ""
    backend: str = ""


@dataclasses.dataclass(frozen=True)
class ProbeRetry(AnalysisEvent):
    """A probe run attempt faulted and is about to be retried.

    ``attempt`` is the 1-based number of the attempt that faulted;
    ``fault`` its taxonomy kind (``timeout``/``backend-error``/...).
    The legacy string protocol never reported retries, so
    ``progress=`` transcripts are unchanged.
    """

    kind: ClassVar[str] = "probe_retry"

    workload: str
    probe: str
    replica: int
    attempt: int
    fault: str
    detail: str = ""
    app: str = ""
    backend: str = ""


@dataclasses.dataclass(frozen=True)
class ProbeFaulted(AnalysisEvent):
    """A probe run exhausted its attempts and was quarantined.

    Under ``on_fault="degrade"`` the campaign continues and the run
    lands in the end-of-campaign :class:`FaultsSummary`; under
    ``"fail"`` this event precedes the campaign's abort.
    """

    kind: ClassVar[str] = "probe_faulted"

    workload: str
    probe: str
    replica: int
    fault: str
    attempts: int
    detail: str = ""
    app: str = ""
    backend: str = ""


@dataclasses.dataclass(frozen=True)
class PoolRecovered(AnalysisEvent):
    """A broken process pool was rebuilt mid-batch.

    ``lost_runs`` counts the in-flight runs the dead worker took with
    it that were re-enqueued on the fresh pool (exhausted runs are
    reported separately as :class:`ProbeFaulted`).
    """

    kind: ClassVar[str] = "pool_recovered"

    lost_runs: int
    rebuilds: int = 1
    app: str = ""
    backend: str = ""


@dataclasses.dataclass(frozen=True)
class FaultsSummary(AnalysisEvent):
    """End-of-campaign quarantine list.

    Emitted only when at least one run faulted, so fault-free
    campaigns' event streams are byte-identical to the pre-fault
    format. ``kinds`` maps taxonomy kind to count; ``faults`` carries
    the full :class:`repro.core.faults.ProbeFault` records in their
    JSON form (``ProbeFault.from_dict`` round-trips them).
    """

    kind: ClassVar[str] = "faults_summary"

    total: int
    kinds: dict
    faults: tuple[dict, ...] = ()
    app: str = ""
    backend: str = ""


@dataclasses.dataclass(frozen=True)
class EngineStatsEvent(AnalysisEvent):
    """Final probe-engine run accounting for the analysis.

    ``persistent_hits`` counts the subset of ``cache_hits`` answered
    from the on-disk cross-campaign run cache rather than this
    analysis's own LRU; ``executor`` names the resolved sharding
    strategy (``serial``/``thread``/``process``). Both default to
    their no-op values so pre-existing consumers (and the legacy
    string transcript) are unaffected when the features are off.
    """

    kind: ClassVar[str] = "engine_stats"

    runs_requested: int
    runs_executed: int
    cache_hits: int
    replicas_skipped: int
    app: str = ""
    persistent_hits: int = 0
    executor: str = "serial"
    backend: str = ""
    faulted: int = 0

    def to_dict(self) -> dict:
        """Like the base form, additionally omitting ``faulted`` when
        zero — fault-free campaigns keep the pre-fault JSON stream
        byte-identical."""
        data = super().to_dict()
        if data.get("faulted", 0) == 0:
            data.pop("faulted", None)
        return data

    @staticmethod
    def from_stats(
        stats: EngineStats, *, executor: str = "serial"
    ) -> "EngineStatsEvent":
        return EngineStatsEvent(
            runs_requested=stats.runs_requested,
            runs_executed=stats.runs_executed,
            cache_hits=stats.cache_hits,
            replicas_skipped=stats.replicas_skipped,
            persistent_hits=stats.persistent_hits,
            executor=executor,
            faulted=stats.faulted,
        )

    def stats(self) -> EngineStats:
        """The event's payload as a first-class :class:`EngineStats`."""
        return EngineStats(
            runs_requested=self.runs_requested,
            runs_executed=self.runs_executed,
            cache_hits=self.cache_hits,
            replicas_skipped=self.replicas_skipped,
            persistent_hits=self.persistent_hits,
            faulted=self.faulted,
        )

    def legacy_line(self) -> str:
        return f"engine: {self.stats().describe()}"


@dataclasses.dataclass(frozen=True)
class StoreStatsEvent(AnalysisEvent):
    """Observable state of the persistent run-cache store, emitted by
    the session after each analysis that used one.

    ``store`` names the backend (``jsonl``/``sqlite``); ``entries``
    is the live record count, ``loaded_records``/``stale_records``
    the unique/superseded split found at open (stale is always 0 on
    SQLite, whose upsert replaces in place); ``evictions`` counts
    LRU evictions under ``max_entries``. The legacy string protocol
    never reported store state, so :meth:`legacy_line` stays ``None``
    and ``progress=`` transcripts are unchanged.
    """

    kind: ClassVar[str] = "store_stats"

    store: str
    path: str
    entries: int
    loaded_records: int = 0
    stale_records: int = 0
    file_bytes: int = 0
    max_entries: "int | None" = None
    evictions: int = 0
    app: str = ""
    backend: str = ""

    @staticmethod
    def from_stats(stats: "StoreStats") -> "StoreStatsEvent":
        return StoreStatsEvent(
            store=stats.kind,
            path=stats.path,
            entries=stats.entries,
            loaded_records=stats.loaded_records,
            stale_records=stats.stale_records,
            file_bytes=stats.file_bytes,
            max_entries=stats.max_entries,
            evictions=stats.evictions,
        )


@dataclasses.dataclass(frozen=True)
class AnalysisFinished(AnalysisEvent):
    """The analysis completed; ``duration_s`` is wall-clock seconds."""

    kind: ClassVar[str] = "analysis_finished"

    duration_s: float
    app: str = ""
    backend: str = ""

    def legacy_line(self) -> str:
        return f"analysis finished in {self.duration_s:.2f}s"


@dataclasses.dataclass(frozen=True)
class AnalysisCancelled(AnalysisEvent):
    """The analysis stopped at a cancellation checkpoint.

    The terminal event of a cancelled campaign: emitted (after a final
    :class:`EngineStatsEvent` carrying the accounting so far) right
    before :class:`repro.errors.AnalysisCancelledError` is raised, so
    event streams — a ``--events jsonl`` pipe interrupted by Ctrl-C,
    a server job's event log — always end on an explicit terminal
    record instead of cutting off mid-stream. ``reason`` says who
    asked (``"signal"`` for SIGINT, ``"cancelled"`` for an API
    cancel).
    """

    kind: ClassVar[str] = "analysis_cancelled"

    duration_s: float
    reason: str = "cancelled"
    app: str = ""
    backend: str = ""

    def legacy_line(self) -> str:
        return f"analysis cancelled after {self.duration_s:.2f}s"


@dataclasses.dataclass(frozen=True)
class TargetStarted(AnalysisEvent):
    """Multi-target fan-out: one execution target's analysis begins.

    ``backend`` is the target's *registry* name (what the caller put
    in the comma list), which is how targets are told apart even when
    two registry entries resolve to identically-named execution
    backends. ``index`` is the target's 0-based position among the
    campaign's ``total`` targets.
    """

    kind: ClassVar[str] = "target_started"

    backend: str
    index: int
    total: int
    app: str = ""


@dataclasses.dataclass(frozen=True)
class TargetFinished(AnalysisEvent):
    """Multi-target fan-out: one execution target's analysis is done.

    ``ok`` mirrors the result's ``final_run_ok``; ``duration_s`` is
    the target's wall-clock share (near-zero when the session answered
    it from a memoized record).
    """

    kind: ClassVar[str] = "target_finished"

    backend: str
    ok: bool
    duration_s: float
    app: str = ""


@dataclasses.dataclass(frozen=True)
class CrossValidationReady(AnalysisEvent):
    """The cross-backend divergence report of a fan-out is built.

    ``report`` is the JSON form of a
    :class:`repro.report.CrossValidationReport`
    (``CrossValidationReport.from_dict`` round-trips it exactly —
    that is how ``--events jsonl`` consumers rebuild the report).
    """

    kind: ClassVar[str] = "cross_validation_report"

    report: dict
    app: str = ""
    backend: str = ""


# -- the server envelope -----------------------------------------------------

#: Version of the jsonl event envelope the campaign server speaks.
#: Bumped only when an *incompatible* change to the envelope shape
#: ships; adding events or fields is compatible and does not bump it.
SCHEMA_VERSION = 1


def envelope(
    event: AnalysisEvent, *, schema_version: int = SCHEMA_VERSION
) -> dict:
    """The event's JSON form wrapped in the versioned server envelope.

    Injected only at the service layer: direct ``--events jsonl``
    streams keep emitting bare :meth:`AnalysisEvent.to_dict` objects,
    byte-identical to the historical format, while server clients can
    negotiate on ``schema_version`` (field first, so stripping it
    restores the bare line exactly). Existing consumers that index by
    ``"event"`` ignore the extra field for free.
    """
    return {"schema_version": schema_version, **event.to_dict()}


# -- adapters ----------------------------------------------------------------


def legacy_adapter(progress: Callable[[str], None]) -> EventCallback:
    """Wrap a legacy string callback as an event consumer.

    Events that had a string form render to the byte-identical legacy
    line; events the string protocol never reported are dropped, so a
    legacy ``progress=`` caller sees exactly the pre-event output.
    """

    def emit(event: AnalysisEvent) -> None:
        line = event.legacy_line()
        if line is not None:
            progress(line)

    return emit


def tag_app(emit: EventCallback, app: str) -> EventCallback:
    """Stamp *app* onto every event that lacks an identity.

    The analyzer wraps its emitter with this so concurrent analyses
    sharing one session callback stay attributable.
    """

    def tagged(event: AnalysisEvent) -> None:
        if getattr(event, "app", None) == "":
            event = dataclasses.replace(event, app=app)
        emit(event)

    return tagged


def tag_backend(emit: EventCallback, backend: str) -> EventCallback:
    """Stamp the registry name *backend* onto every event of one leg.

    The session's multi-target fan-out wraps each target's emitter
    with this, so one interleaved stream stays attributable per
    target. The stamp *overrides* :class:`AnalysisStarted`'s execution
    backend identity too: two registry variants can resolve to
    identically-named execution backends (the collision case the
    fan-out explicitly supports), and only the registry name tells
    their concurrent legs apart. Within a fan-out stream, ``backend``
    therefore always means the registry target name; the execution
    identity remains available in the cross-validation report's
    observations and in the loupedb records.
    """

    def tagged(event: AnalysisEvent) -> None:
        if getattr(event, "backend", None) != backend:
            event = dataclasses.replace(event, backend=backend)
        emit(event)

    return tagged


def render_legacy(events: Iterable[AnalysisEvent]) -> list[str]:
    """The legacy progress transcript of an event stream."""
    lines: list[str] = []
    for event in events:
        line = event.legacy_line()
        if line is not None:
            lines.append(line)
    return lines


def combine_callbacks(
    *callbacks: "EventCallback | None",
) -> "EventCallback | None":
    """Fan one event out to several consumers (``None``s are skipped)."""
    active = [callback for callback in callbacks if callback is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def emit(event: AnalysisEvent) -> None:
        for callback in active:
            callback(event)

    return emit
