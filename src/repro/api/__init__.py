"""``repro.api`` — the single programmatic front door to Loupe.

* :mod:`repro.api.session` — :class:`LoupeSession` /
  :class:`AnalysisRequest`: campaign state (database, config,
  concurrency) and the analyze/plan/query entry points.
* :mod:`repro.api.events` — the typed progress-event stream that
  replaced the string callback, plus the legacy string adapter.
* :mod:`repro.api.registry` — the pluggable execution-backend
  registry (``appsim`` and ``ptrace`` self-register).

Exports resolve lazily (PEP 562) so leaf modules — notably
:mod:`repro.core.analyzer`, which imports :mod:`repro.api.events` —
can load without dragging in the whole session machinery.
"""

from __future__ import annotations

import importlib
from typing import TYPE_CHECKING

_EXPORTS = {
    # session
    "AnalysisRequest": "repro.api.session",
    "LoupeSession": "repro.api.session",
    # events
    "AnalysisEvent": "repro.api.events",
    "AnalysisFinished": "repro.api.events",
    "AnalysisStarted": "repro.api.events",
    "BaselineStarted": "repro.api.events",
    "CombinedRunFinished": "repro.api.events",
    "ConflictBisected": "repro.api.events",
    "CrossValidationReady": "repro.api.events",
    "EngineStatsEvent": "repro.api.events",
    "FeatureProbed": "repro.api.events",
    "FeaturesEnumerated": "repro.api.events",
    "TargetFinished": "repro.api.events",
    "TargetStarted": "repro.api.events",
    "combine_callbacks": "repro.api.events",
    "legacy_adapter": "repro.api.events",
    "render_legacy": "repro.api.events",
    # registry
    "BackendRegistryError": "repro.api.registry",
    "BackendResolutionError": "repro.api.registry",
    "ResolvedTarget": "repro.api.registry",
    "UnknownBackendError": "repro.api.registry",
    "available_backends": "repro.api.registry",
    "create_target": "repro.api.registry",
    "create_targets": "repro.api.registry",
    "parse_backend_names": "repro.api.registry",
    "register_backend": "repro.api.registry",
    "resolve_backend": "repro.api.registry",
    "unregister_backend": "repro.api.registry",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_EXPORTS))


if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.api.events import (
        AnalysisEvent,
        AnalysisFinished,
        AnalysisStarted,
        BaselineStarted,
        CombinedRunFinished,
        ConflictBisected,
        CrossValidationReady,
        EngineStatsEvent,
        FeatureProbed,
        FeaturesEnumerated,
        TargetFinished,
        TargetStarted,
        combine_callbacks,
        legacy_adapter,
        render_legacy,
    )
    from repro.api.registry import (
        BackendRegistryError,
        BackendResolutionError,
        ResolvedTarget,
        UnknownBackendError,
        available_backends,
        create_target,
        create_targets,
        parse_backend_names,
        register_backend,
        resolve_backend,
        unregister_backend,
    )
    from repro.api.session import AnalysisRequest, LoupeSession
