"""The campaign session: Loupe's programmatic front door.

The paper's Figure-1 pipeline is one coherent loop — analyze an
application, record the result into the shared loupedb, plan support
from the accumulated records. :class:`LoupeSession` is that loop as an
object: it owns a :class:`~repro.db.Database` of results, a default
:class:`~repro.core.analyzer.AnalyzerConfig`, and the concurrency
policy for whole campaigns, and exposes

* :meth:`LoupeSession.analyze` — one (app, workload, backend) request,
  memoized in the session database (the loupedb pattern);
* :meth:`LoupeSession.analyze_many` — a batch of requests fanned out
  over ``jobs`` worker threads, first write wins on duplicates;
* :meth:`LoupeSession.plan` — an incremental support plan computed
  from the Section 4 machinery;
* :meth:`LoupeSession.query` — lookups over the accumulated records.

Progress surfaces as the typed event stream of
:mod:`repro.api.events`; legacy string callbacks keep working through
:func:`~repro.api.events.legacy_adapter`. Backends are chosen by
registry name (:mod:`repro.api.registry`) or supplied pre-built via
:meth:`AnalysisRequest.for_app` / :meth:`AnalysisRequest.for_target`.

The CLI, the Section 5 studies (:mod:`repro.study.base` keeps a
module-default session), and the benchmarks all sit on top of this
class; nothing else needs to wire ``Analyzer``/backends/``Database``
together by hand.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.api.events import (
    CrossValidationReady,
    EventCallback,
    StoreStatsEvent,
    TargetFinished,
    TargetStarted,
    combine_callbacks,
    legacy_adapter,
    tag_backend,
)
from repro.api.registry import (
    ResolvedTarget,
    create_target,
    create_targets,
    parse_backend_names,
)
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.cachestore import RunCacheBackend, open_store, store_identity
from repro.core.engine import EngineStats
from repro.core.result import AnalysisResult
from repro.core.runner import backend_name, capabilities_of
from repro.db import Database, RecordKey
from repro.errors import PlanError
from repro.report import CrossValidationReport, cross_validate

#: AnalyzerConfig fields that change what an analysis *concludes* (as
#: opposed to the engine knobs — parallel/cache/early_exit — which only
#: change how fast it concludes it). A memoized record only answers a
#: request whose semantic fields match the ones that produced it.
_SEMANTIC_CONFIG_FIELDS = (
    "replicas",
    "subfeature_level",
    "pseudo_files",
    "guard_metrics",
    "strict_metrics",
    "metric_margin",
    "bisect_conflicts",
    "max_demotion_rounds",
    "priors",
    # Fault handling changes conclusions, not just speed: a degraded
    # campaign can report features UNDECIDED that a fail-fast one would
    # have aborted on, and a timeout decides which runs ever finish.
    "probe_timeout_s",
    "retries",
    "on_fault",
)


def _config_semantics(config: AnalyzerConfig) -> tuple:
    return tuple(
        getattr(config, field) for field in _SEMANTIC_CONFIG_FIELDS
    )


def _target_record_key(target: "ResolvedTarget") -> RecordKey:
    """The loupedb identity of one resolved target — the single
    definition shared by session memoization and the fan-out's
    identity-collision detection (which must agree, or colliding legs
    could again be answered from each other's memoized records)."""
    return RecordKey(
        app=target.app,
        app_version=target.app_version,
        workload=target.workload.name,
        backend=backend_name(target.backend),
    )


@dataclasses.dataclass(frozen=True)
class AnalysisRequest:
    """One unit of campaign work: *what* to analyze, declaratively.

    ``backend`` names a registry entry; the named factory interprets
    the remaining fields (``appsim`` reads ``app``/``workload``,
    ``ptrace`` reads ``argv``/``timeout_s``). A pre-resolved ``target``
    bypasses the registry entirely — that is how callers holding a
    live :class:`~repro.appsim.apps.App` model or a custom backend
    object enter the session.

    A request may address several execution targets at once: either
    ``backends=("appsim", "ptrace")`` or a comma list in ``backend``
    (``backend="appsim,ptrace"`` — the CLI spelling). Such a request
    fans one (workload, policy) campaign across every named backend
    and yields a :class:`~repro.report.CrossValidationReport` instead
    of a single result; see :meth:`LoupeSession.analyze`. ``backends``
    wins over ``backend`` when both are set.
    """

    app: str = ""
    workload: str = "bench"
    backend: str = "appsim"
    argv: tuple[str, ...] = ()
    timeout_s: float = 60.0
    #: Pre-resolved target; excluded from equality/hashing because it
    #: carries live backend objects.
    target: "ResolvedTarget | None" = dataclasses.field(
        default=None, compare=False
    )
    #: Multi-target spelling: registry names to fan the campaign over.
    #: Empty means "use ``backend``" (which may itself be a comma
    #: list).
    backends: tuple[str, ...] = ()

    def _backend_spec(self) -> tuple[str, ...]:
        """Raw spec entries, commas expanded, duplicates preserved."""
        entries = self.backends or (self.backend,)
        if isinstance(entries, str):
            # backends="appsim" (a natural misuse — parse_backend_names
            # and compare(backends=...) both take plain strings) must
            # not be iterated character by character.
            entries = (entries,)
        return tuple(
            part for entry in entries for part in str(entry).split(",")
        )

    def backend_names(self) -> tuple[str, ...]:
        """The unique registry names this request addresses, in order."""
        return parse_backend_names(self.backends or self.backend)

    def is_multi_target(self) -> bool:
        """Whether this request asks for the multi-target fan-out.

        Decided on the *raw* spec, before deduplication: ``"appsim"``
        is a plain single-backend request, while ``"appsim,appsim"``
        deliberately enters the fan-out — deduplicating to one leg and
        yielding a degenerate single-target report with zero
        divergences (register the factory under a second name for a
        real self-comparison, as the CI compare-smoke job does). A
        pre-resolved ``target`` always bypasses the registry, and
        therefore the fan-out.
        """
        return self.target is None and len(self._backend_spec()) > 1

    @staticmethod
    def for_app(app, workload: str = "bench") -> "AnalysisRequest":
        """Wrap a corpus :class:`~repro.appsim.apps.App` model (or any
        object with ``name``/``version``/``backend()``/``workload(name)``)."""
        return AnalysisRequest(
            app=app.name,
            workload=workload,
            target=ResolvedTarget(
                backend=app.backend(),
                workload=app.workload(workload),
                app=app.name,
                app_version=app.version,
            ),
        )

    @staticmethod
    def for_target(
        backend, workload, *, app: str = "", app_version: str = ""
    ) -> "AnalysisRequest":
        """Wrap a pre-built (backend, workload) pair directly."""
        name = app or workload.name
        return AnalysisRequest(
            app=name,
            workload=workload.name,
            target=ResolvedTarget(
                backend=backend,
                workload=workload,
                app=name,
                app_version=app_version,
            ),
        )

    def resolve(self) -> ResolvedTarget:
        """The concrete (single) target, via the registry unless
        pre-resolved. Multi-target requests resolve through
        :func:`~repro.api.registry.create_targets` in the session's
        fan-out instead."""
        if self.target is not None:
            return self.target
        return create_target(self.backend_names(), self)


class LoupeSession:
    """One analysis campaign: shared database, config, concurrency.

    Sessions are thread-safe: :meth:`analyze` may be called from many
    threads (that is exactly what :meth:`analyze_many` does) and the
    database is guarded by a lock with first-write-wins semantics, so
    concurrent duplicate requests still yield one canonical record.

    ``cache_path`` opens a persistent cross-campaign run cache
    (:func:`repro.core.cachestore.open_store` picks the backend from
    the path: JSONL by default, SQLite for ``*.sqlite``/``sqlite:``
    paths): every analysis of the session reads and feeds it, and a
    later campaign — another process, another day — pointed at the
    same path starts warm. After each analysis that used a store the
    session emits a :class:`~repro.api.events.StoreStatsEvent` with
    the store's live state. Sessions are context managers (``with
    LoupeSession(...) as s:``) so the cache's file handle is released
    deterministically.
    """

    def __init__(
        self,
        *,
        config: "AnalyzerConfig | None" = None,
        database: "Database | None" = None,
        on_event: "EventCallback | None" = None,
        progress: "Callable[[str], None] | None" = None,
        cache_path: "str | None" = None,
    ) -> None:
        self.config = config or AnalyzerConfig()
        self._lock = threading.Lock()
        #: Open stores by *store identity* — the backend kind plus
        #: the resolved absolute path, so two spellings of one file
        #: (``cache.jsonl`` vs its absolute path) share one store
        #: (one open handle, one index) instead of racing two append
        #: handles on the same inode. Every analysis of the session
        #: sharing an identity shares the store — including per-call
        #: config overrides naming their own ``run_cache`` — instead
        #: of re-parsing the file per analyzer. All of them close
        #: with the session.
        self._stores: dict[tuple[str, str], RunCacheBackend] = {}
        #: The session-default persistent run cache: ``cache_path``
        #: wins, else ``config.run_cache``. A second campaign built
        #: over the same path starts warm. The default config is
        #: rewritten to match so every resolution path — including
        #: per-call configs, which override the default like any other
        #: knob — agrees on where the session persists by default.
        path = cache_path or self.config.run_cache
        if path and self.config.run_cache != path:
            self.config = dataclasses.replace(self.config, run_cache=path)
        self.run_cache: "RunCacheBackend | None" = (
            self._store_for(
                path,
                self.config.run_cache_max_entries,
                self.config.run_cache_ttl_s,
            )
            if path
            else None
        )
        self._database = database if database is not None else Database()
        #: Semantic-config fingerprint of the run that produced each
        #: record. Records this session didn't produce (a preloaded
        #: database) have no entry and are trusted as-is — the loupedb
        #: contract is that stored records are final.
        self._semantics: dict[RecordKey, tuple] = {}
        self._on_event = on_event
        self._progress = progress
        #: Probe-engine accounting of the most recent :meth:`analyze`
        #: that actually ran (cache hits leave it untouched).
        self.last_engine_stats: "EngineStats | None" = None
        #: Transfer accounting of the most recent run (None unless the
        #: config carries priors).
        self.last_transfer_stats: "object | None" = None

    # -- observability -------------------------------------------------------

    @property
    def database(self) -> Database:
        """The session's loupedb: every memoized analysis record."""
        with self._lock:
            return self._database

    def clear(self) -> None:
        """Drop every memoized record (a fresh, empty database).

        The persistent run cache, when configured, is left alone: it
        holds raw run results, not analysis records, and surviving
        campaign resets is its entire point.
        """
        with self._lock:
            self._database = Database()
            self._semantics = {}

    def _store_for(
        self,
        path: str,
        max_entries: "int | None" = None,
        ttl_s: "float | None" = None,
    ) -> RunCacheBackend:
        """The session's shared store for *path* (opened on first use).

        Keyed by resolved identity, not the raw string, so relative
        and absolute spellings of one file share one store. The first
        open of an identity wins its configuration (*max_entries*,
        *ttl_s*).
        """
        identity = store_identity(path)
        with self._lock:
            store = self._stores.get(identity)
            if store is None:
                store = self._stores[identity] = open_store(
                    path, max_entries=max_entries, ttl_s=ttl_s
                )
            return store

    def close(self) -> None:
        """Release session-held resources (run-cache file handles).

        Idempotent, and the session stays usable — stores reopen
        their files on the next write.
        """
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            store.close()

    def __enter__(self) -> "LoupeSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _emitter(
        self,
        on_event: "EventCallback | None",
        progress: "Callable[[str], None] | None",
    ) -> "EventCallback | None":
        return combine_callbacks(
            on_event,
            self._on_event,
            legacy_adapter(progress) if progress is not None else None,
            legacy_adapter(self._progress)
            if self._progress is not None
            else None,
        )

    # -- the campaign API ----------------------------------------------------

    @staticmethod
    def _coerce(request, workload: "str | None") -> AnalysisRequest:
        if isinstance(request, AnalysisRequest):
            if workload is None:
                return request
            if request.target is not None:
                if request.target.workload.name == workload:
                    return request
                raise ValueError(
                    f"request is already resolved to workload "
                    f"{request.target.workload.name!r}; it cannot be "
                    f"overridden with workload={workload!r} — build the "
                    f"request with the desired workload instead"
                )
            return dataclasses.replace(request, workload=workload)
        if isinstance(request, str):
            return AnalysisRequest(app=request, workload=workload or "bench")
        if hasattr(request, "backend") and hasattr(request, "workload"):
            return AnalysisRequest.for_app(request, workload or "bench")
        raise TypeError(
            f"cannot interpret {request!r} as an analysis request; pass an "
            f"AnalysisRequest, a corpus app name, or an App model"
        )

    def analyze(
        self,
        request,
        *,
        workload: "str | None" = None,
        config: "AnalyzerConfig | None" = None,
        on_event: "EventCallback | None" = None,
        progress: "Callable[[str], None] | None" = None,
        use_cache: bool = True,
        cancel_check: "Callable[[], bool] | None" = None,
        progress_hook: "Callable[[], None] | None" = None,
    ) -> "AnalysisResult | CrossValidationReport":
        """Analyze one request, memoized in the session database.

        *request* may be an :class:`AnalysisRequest`, a corpus app name
        (``session.analyze("redis")``), or an ``App`` model. *config*
        overrides the session default for this call only. A cached
        record only answers a request whose semantic config fields
        (replicas, guarding, bisection, priors, ...) match the run
        that produced it — engine knobs (parallel/cache/early_exit)
        change how fast an analysis runs, never what it concludes, and
        so never force a re-run. ``use_cache=False`` forces a fresh
        run (the new record still replaces the stored one).

        *cancel_check* installs a cooperative cancellation hook for
        this call (``AnalyzerConfig.cancel_check`` on the effective
        config): polled between probe waves, a truthy answer stops the
        campaign within one wave by raising
        :class:`repro.errors.AnalysisCancelledError` after a terminal
        ``analysis_cancelled`` event. The campaign-server job runner
        (and any other long-lived driver) cancels live analyses
        through exactly this hook.

        *progress_hook* installs a cooperative liveness hook
        (``AnalyzerConfig.progress_hook``), invoked at the same wave
        boundaries: the campaign server heartbeats a running job's
        lease through it, so a worker that stops reaching checkpoints
        is detectable from outside. Exceptions it raises are swallowed
        by the analyzer — observation must never change outcomes.

        A request addressing several targets (``backends=...`` or a
        comma list in ``backend``) fans the campaign across all of
        them — each target's record lands in the loupedb under its own
        key — and returns the :class:`~repro.report.CrossValidationReport`
        diffing their observations; a single-target request returns
        its :class:`~repro.core.result.AnalysisResult` exactly as
        before.
        """
        coerced = self._coerce(request, workload)
        emit = self._emitter(on_event, progress)
        hooks = {}
        if cancel_check is not None:
            hooks["cancel_check"] = cancel_check
        if progress_hook is not None:
            hooks["progress_hook"] = progress_hook
        if hooks:
            config = dataclasses.replace(config or self.config, **hooks)
        if coerced.is_multi_target():
            return self._fan_out(
                coerced, config=config, emit=emit, use_cache=use_cache
            )
        return self._analyze_resolved(
            coerced.resolve(), config=config, emit=emit, use_cache=use_cache
        )

    def _analyze_resolved(
        self,
        target: ResolvedTarget,
        *,
        config: "AnalyzerConfig | None",
        emit: "EventCallback | None",
        use_cache: bool,
        independent: bool = False,
    ) -> AnalysisResult:
        """One target's analysis, memoized in the session database
        (the single-target path, and one leg of a fan-out).

        ``independent`` legs (fan-out identity collisions) must
        produce evidence of their own: besides skipping the session
        memo, they run without *any* persistent run cache — the store
        is keyed by ``(backend name, workload, policy, replica)``, so
        a shared (or campaign-warmed) store would answer one leg with
        the other's runs and mask every divergence.
        """
        effective = config or self.config
        if independent and effective.run_cache:
            effective = dataclasses.replace(
                effective,
                run_cache=None,
                run_cache_max_entries=None,
                run_cache_ttl_s=None,
            )
        semantics = _config_semantics(effective)
        key = _target_record_key(target)

        def cache_answers() -> bool:
            # Records this session produced answer only matching
            # semantics; preloaded records (no entry) are trusted.
            return key in self._database and self._semantics.get(
                key, semantics
            ) == semantics

        if use_cache:
            with self._lock:
                if cache_answers():
                    return self._database.get(key)
        # A config naming its own run_cache path wins (like every other
        # per-call override); otherwise the session default applies.
        # Either way one store per identity is shared across the
        # campaign (relative and absolute spellings of one file
        # resolve to the same store).
        store = (
            self._store_for(
                effective.run_cache,
                effective.run_cache_max_entries,
                effective.run_cache_ttl_s,
            )
            if effective.run_cache
            else (None if independent else self.run_cache)
        )
        with Analyzer(effective, store=store) as analyzer:
            result = analyzer.analyze(
                target.backend,
                target.workload,
                app=target.app,
                app_version=target.app_version,
                on_event=emit,
            )
        if store is not None and emit is not None:
            emit(dataclasses.replace(
                StoreStatsEvent.from_stats(store.stats()), app=target.app
            ))
        with self._lock:
            if use_cache and cache_answers():
                # A concurrent worker finished the same request first;
                # analyses are deterministic, so first write wins and
                # every caller sees one canonical record (this run's
                # result and stats are discarded together).
                return self._database.get(key)
            self._database.add(result)
            self._semantics[key] = semantics
            self.last_engine_stats = analyzer.engine.stats
            self.last_transfer_stats = analyzer.last_transfer_stats
        return result

    def _fan_out(
        self,
        coerced: AnalysisRequest,
        *,
        config: "AnalyzerConfig | None",
        emit: "EventCallback | None",
        use_cache: bool,
    ) -> CrossValidationReport:
        """Fan one (workload, policy) campaign across every requested
        backend and cross-validate the per-target results.

        All targets resolve up front (an unknown name anywhere in the
        spec fails before any run), then analyze concurrently when
        every backend's capability contract declares ``parallel_safe``
        — otherwise strictly in spec order (a live ptrace target in
        the mix keeps the whole fan-out serial rather than risking
        port/state contention). Each target's events are stamped with
        its registry name; each record lands in the loupedb under its
        own key.

        A comparison must compare *runs*, not copies of one record: a
        registry variant whose execution backend shares another
        target's loupedb identity (same ``backend.name`` — every
        re-registration of the appsim factory does this) would
        otherwise be answered from the first leg's memoized record and
        trivially "agree". So legs whose record key collides with an
        earlier leg of the same fan-out always execute fresh; their
        targets share one loupedb key (identity is the backend's own
        contract), but the report is built from what each leg actually
        observed.
        """
        names = coerced.backend_names()
        targets = create_targets(names, coerced)
        capabilities = [
            capabilities_of(target.backend) for target in targets
        ]
        keys = [_target_record_key(target) for target in targets]
        # Every member of a colliding group runs independently — not
        # just the later legs: a memoized first leg could otherwise
        # adopt a colliding leg's concurrently-written record in the
        # post-run "first write wins" check and discard its own run.
        independent = [keys.count(key) > 1 for key in keys]

        def run_target(index: int) -> AnalysisResult:
            name, target = names[index], targets[index]
            target_emit = (
                tag_backend(emit, name) if emit is not None else None
            )
            started = time.monotonic()
            if target_emit is not None:
                target_emit(TargetStarted(
                    backend=name, index=index, total=len(targets),
                    app=target.app,
                ))
            result = self._analyze_resolved(
                target, config=config, emit=target_emit,
                use_cache=use_cache and not independent[index],
                independent=independent[index],
            )
            if target_emit is not None:
                target_emit(TargetFinished(
                    backend=name, ok=result.final_run_ok,
                    duration_s=time.monotonic() - started,
                    app=target.app,
                ))
            return result

        if len(targets) > 1 and all(c.parallel_safe for c in capabilities):
            with ThreadPoolExecutor(
                max_workers=len(targets), thread_name_prefix="loupe-target"
            ) as pool:
                futures = [
                    pool.submit(run_target, index)
                    for index in range(len(targets))
                ]
                results = [future.result() for future in futures]
        else:
            results = [run_target(index) for index in range(len(targets))]

        report = cross_validate(
            [
                (name, result, caps.real_execution, caps.static_analysis)
                for name, result, caps
                in zip(names, results, capabilities)
            ],
            app=targets[0].app,
            workload=targets[0].workload.name,
        )
        if emit is not None:
            emit(CrossValidationReady(
                report=report.to_dict(), app=report.app
            ))
        return report

    def compare(
        self,
        request,
        *,
        backends: "str | Sequence[str] | None" = None,
        workload: "str | None" = None,
        config: "AnalyzerConfig | None" = None,
        on_event: "EventCallback | None" = None,
        progress: "Callable[[str], None] | None" = None,
        use_cache: bool = True,
    ) -> CrossValidationReport:
        """Cross-validate one request across execution backends.

        Like :meth:`analyze`, but always through the multi-target
        fan-out and always returning the
        :class:`~repro.report.CrossValidationReport` — even for a
        single backend (a degenerate report with no divergences).
        *backends* overrides the request's own backend spec
        (``backends="appsim,ptrace"`` or an iterable of names) —
        including a pre-resolved request's (an ``App`` model, or one
        built via :meth:`AnalysisRequest.for_app`), whose target is
        dropped in favor of registry resolution of its ``app``.
        """
        coerced = self._coerce(request, workload)
        if backends is not None:
            # The override wins completely: drop any pre-resolved
            # target so the named factories re-resolve the request
            # (its app/workload identity fields are already set).
            coerced = dataclasses.replace(
                coerced,
                backends=parse_backend_names(backends),
                target=None,
            )
        if coerced.target is not None:
            raise ValueError(
                "compare() fans out over registry backend names; a "
                "pre-resolved target request cannot be compared — pass "
                "backends=... with registry names instead"
            )
        return self._fan_out(
            coerced,
            config=config,
            emit=self._emitter(on_event, progress),
            use_cache=use_cache,
        )

    def analyze_many(
        self,
        requests: Iterable,
        *,
        jobs: int = 1,
        config: "AnalyzerConfig | None" = None,
        use_cache: bool = True,
    ) -> "list[AnalysisResult | CrossValidationReport]":
        """Analyze a batch of requests, ``jobs`` at a time.

        Requests share nothing but the lock-guarded session database;
        results come back in request order regardless of completion
        order. A multi-target request in the batch fans out exactly as
        in :meth:`analyze` and contributes its
        :class:`~repro.report.CrossValidationReport` at its position.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        coerced = [self._coerce(request, None) for request in requests]
        if jobs == 1:
            return [
                self.analyze(request, config=config, use_cache=use_cache)
                for request in coerced
            ]
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="loupe-app"
        ) as pool:
            futures = [
                pool.submit(
                    self.analyze, request, config=config, use_cache=use_cache
                )
                for request in coerced
            ]
            return [future.result() for future in futures]

    def plan(
        self,
        *,
        os_name: str = "unikraft",
        apps: "str | Sequence" = "cloud",
        workload: str = "bench",
        support_csv: "str | None" = None,
    ):
        """An incremental support plan for *os_name* over *apps*.

        *apps* is ``"cloud"``, ``"corpus"``, or an explicit sequence of
        app models. The OS baseline comes from the named Table-1
        profile unless *support_csv* points at a syscall-support CSV.
        """
        from repro.appsim.corpus import cloud_apps, corpus
        from repro.plans import (
            SupportState,
            generate_plan,
            requirements_for_all,
            table1_states,
        )

        if apps == "cloud":
            app_models = cloud_apps()
        elif apps == "corpus":
            app_models = corpus()
        else:
            app_models = list(apps)
        requirements = requirements_for_all(app_models, workload)
        if support_csv:
            state = SupportState.load(support_csv, os_name=os_name)
        else:
            # The Table-1 baselines are always computed over the cloud
            # set; reuse the requirements just gathered when that is
            # what the caller targeted.
            cloud_requirements = (
                requirements
                if apps == "cloud"
                else requirements_for_all(cloud_apps(), workload)
            )
            states = table1_states(cloud_requirements)
            if os_name not in states:
                raise PlanError(
                    f"unknown OS {os_name!r}; choose from: "
                    f"{', '.join(sorted(states))} or pass a support CSV"
                )
            state = states[os_name]
        return generate_plan(state, requirements)

    def query(
        self,
        app: "str | None" = None,
        workload: "str | None" = None,
        *,
        backend: "str | None" = None,
    ) -> list[AnalysisResult]:
        """Records accumulated so far, optionally narrowed by
        app/workload/backend (``query()`` returns everything)."""
        database = self.database
        if app is None:
            return [
                result
                for name in database.apps()
                for result in database.find(
                    name, workload, backend=backend
                )
            ]
        return database.find(app, workload, backend=backend)
