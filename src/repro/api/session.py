"""The campaign session: Loupe's programmatic front door.

The paper's Figure-1 pipeline is one coherent loop — analyze an
application, record the result into the shared loupedb, plan support
from the accumulated records. :class:`LoupeSession` is that loop as an
object: it owns a :class:`~repro.db.Database` of results, a default
:class:`~repro.core.analyzer.AnalyzerConfig`, and the concurrency
policy for whole campaigns, and exposes

* :meth:`LoupeSession.analyze` — one (app, workload, backend) request,
  memoized in the session database (the loupedb pattern);
* :meth:`LoupeSession.analyze_many` — a batch of requests fanned out
  over ``jobs`` worker threads, first write wins on duplicates;
* :meth:`LoupeSession.plan` — an incremental support plan computed
  from the Section 4 machinery;
* :meth:`LoupeSession.query` — lookups over the accumulated records.

Progress surfaces as the typed event stream of
:mod:`repro.api.events`; legacy string callbacks keep working through
:func:`~repro.api.events.legacy_adapter`. Backends are chosen by
registry name (:mod:`repro.api.registry`) or supplied pre-built via
:meth:`AnalysisRequest.for_app` / :meth:`AnalysisRequest.for_target`.

The CLI, the Section 5 studies (:mod:`repro.study.base` keeps a
module-default session), and the benchmarks all sit on top of this
class; nothing else needs to wire ``Analyzer``/backends/``Database``
together by hand.
"""

from __future__ import annotations

import dataclasses
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ThreadPoolExecutor

from repro.api.events import (
    EventCallback,
    StoreStatsEvent,
    combine_callbacks,
    legacy_adapter,
)
from repro.api.registry import ResolvedTarget, resolve_backend
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.cachestore import RunCacheBackend, open_store, store_identity
from repro.core.engine import EngineStats
from repro.core.result import AnalysisResult
from repro.core.runner import backend_name
from repro.db import Database, RecordKey
from repro.errors import PlanError

#: AnalyzerConfig fields that change what an analysis *concludes* (as
#: opposed to the engine knobs — parallel/cache/early_exit — which only
#: change how fast it concludes it). A memoized record only answers a
#: request whose semantic fields match the ones that produced it.
_SEMANTIC_CONFIG_FIELDS = (
    "replicas",
    "subfeature_level",
    "pseudo_files",
    "guard_metrics",
    "strict_metrics",
    "metric_margin",
    "bisect_conflicts",
    "max_demotion_rounds",
    "priors",
)


def _config_semantics(config: AnalyzerConfig) -> tuple:
    return tuple(
        getattr(config, field) for field in _SEMANTIC_CONFIG_FIELDS
    )


@dataclasses.dataclass(frozen=True)
class AnalysisRequest:
    """One unit of campaign work: *what* to analyze, declaratively.

    ``backend`` names a registry entry; the named factory interprets
    the remaining fields (``appsim`` reads ``app``/``workload``,
    ``ptrace`` reads ``argv``/``timeout_s``). A pre-resolved ``target``
    bypasses the registry entirely — that is how callers holding a
    live :class:`~repro.appsim.apps.App` model or a custom backend
    object enter the session.
    """

    app: str = ""
    workload: str = "bench"
    backend: str = "appsim"
    argv: tuple[str, ...] = ()
    timeout_s: float = 60.0
    #: Pre-resolved target; excluded from equality/hashing because it
    #: carries live backend objects.
    target: "ResolvedTarget | None" = dataclasses.field(
        default=None, compare=False
    )

    @staticmethod
    def for_app(app, workload: str = "bench") -> "AnalysisRequest":
        """Wrap a corpus :class:`~repro.appsim.apps.App` model (or any
        object with ``name``/``version``/``backend()``/``workload(name)``)."""
        return AnalysisRequest(
            app=app.name,
            workload=workload,
            target=ResolvedTarget(
                backend=app.backend(),
                workload=app.workload(workload),
                app=app.name,
                app_version=app.version,
            ),
        )

    @staticmethod
    def for_target(
        backend, workload, *, app: str = "", app_version: str = ""
    ) -> "AnalysisRequest":
        """Wrap a pre-built (backend, workload) pair directly."""
        name = app or workload.name
        return AnalysisRequest(
            app=name,
            workload=workload.name,
            target=ResolvedTarget(
                backend=backend,
                workload=workload,
                app=name,
                app_version=app_version,
            ),
        )

    def resolve(self) -> ResolvedTarget:
        """The concrete target, via the registry unless pre-resolved."""
        if self.target is not None:
            return self.target
        return resolve_backend(self.backend)(self)


class LoupeSession:
    """One analysis campaign: shared database, config, concurrency.

    Sessions are thread-safe: :meth:`analyze` may be called from many
    threads (that is exactly what :meth:`analyze_many` does) and the
    database is guarded by a lock with first-write-wins semantics, so
    concurrent duplicate requests still yield one canonical record.

    ``cache_path`` opens a persistent cross-campaign run cache
    (:func:`repro.core.cachestore.open_store` picks the backend from
    the path: JSONL by default, SQLite for ``*.sqlite``/``sqlite:``
    paths): every analysis of the session reads and feeds it, and a
    later campaign — another process, another day — pointed at the
    same path starts warm. After each analysis that used a store the
    session emits a :class:`~repro.api.events.StoreStatsEvent` with
    the store's live state. Sessions are context managers (``with
    LoupeSession(...) as s:``) so the cache's file handle is released
    deterministically.
    """

    def __init__(
        self,
        *,
        config: "AnalyzerConfig | None" = None,
        database: "Database | None" = None,
        on_event: "EventCallback | None" = None,
        progress: "Callable[[str], None] | None" = None,
        cache_path: "str | None" = None,
    ) -> None:
        self.config = config or AnalyzerConfig()
        self._lock = threading.Lock()
        #: Open stores by *store identity* — the backend kind plus
        #: the resolved absolute path, so two spellings of one file
        #: (``cache.jsonl`` vs its absolute path) share one store
        #: (one open handle, one index) instead of racing two append
        #: handles on the same inode. Every analysis of the session
        #: sharing an identity shares the store — including per-call
        #: config overrides naming their own ``run_cache`` — instead
        #: of re-parsing the file per analyzer. All of them close
        #: with the session.
        self._stores: dict[tuple[str, str], RunCacheBackend] = {}
        #: The session-default persistent run cache: ``cache_path``
        #: wins, else ``config.run_cache``. A second campaign built
        #: over the same path starts warm. The default config is
        #: rewritten to match so every resolution path — including
        #: per-call configs, which override the default like any other
        #: knob — agrees on where the session persists by default.
        path = cache_path or self.config.run_cache
        if path and self.config.run_cache != path:
            self.config = dataclasses.replace(self.config, run_cache=path)
        self.run_cache: "RunCacheBackend | None" = (
            self._store_for(path, self.config.run_cache_max_entries)
            if path
            else None
        )
        self._database = database if database is not None else Database()
        #: Semantic-config fingerprint of the run that produced each
        #: record. Records this session didn't produce (a preloaded
        #: database) have no entry and are trusted as-is — the loupedb
        #: contract is that stored records are final.
        self._semantics: dict[RecordKey, tuple] = {}
        self._on_event = on_event
        self._progress = progress
        #: Probe-engine accounting of the most recent :meth:`analyze`
        #: that actually ran (cache hits leave it untouched).
        self.last_engine_stats: "EngineStats | None" = None
        #: Transfer accounting of the most recent run (None unless the
        #: config carries priors).
        self.last_transfer_stats: "object | None" = None

    # -- observability -------------------------------------------------------

    @property
    def database(self) -> Database:
        """The session's loupedb: every memoized analysis record."""
        with self._lock:
            return self._database

    def clear(self) -> None:
        """Drop every memoized record (a fresh, empty database).

        The persistent run cache, when configured, is left alone: it
        holds raw run results, not analysis records, and surviving
        campaign resets is its entire point.
        """
        with self._lock:
            self._database = Database()
            self._semantics = {}

    def _store_for(
        self, path: str, max_entries: "int | None" = None
    ) -> RunCacheBackend:
        """The session's shared store for *path* (opened on first use).

        Keyed by resolved identity, not the raw string, so relative
        and absolute spellings of one file share one store. The first
        open of an identity wins its configuration (*max_entries*).
        """
        identity = store_identity(path)
        with self._lock:
            store = self._stores.get(identity)
            if store is None:
                store = self._stores[identity] = open_store(
                    path, max_entries=max_entries
                )
            return store

    def close(self) -> None:
        """Release session-held resources (run-cache file handles).

        Idempotent, and the session stays usable — stores reopen
        their files on the next write.
        """
        with self._lock:
            stores = list(self._stores.values())
        for store in stores:
            store.close()

    def __enter__(self) -> "LoupeSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _emitter(
        self,
        on_event: "EventCallback | None",
        progress: "Callable[[str], None] | None",
    ) -> "EventCallback | None":
        return combine_callbacks(
            on_event,
            self._on_event,
            legacy_adapter(progress) if progress is not None else None,
            legacy_adapter(self._progress)
            if self._progress is not None
            else None,
        )

    # -- the campaign API ----------------------------------------------------

    @staticmethod
    def _coerce(request, workload: "str | None") -> AnalysisRequest:
        if isinstance(request, AnalysisRequest):
            if workload is None:
                return request
            if request.target is not None:
                if request.target.workload.name == workload:
                    return request
                raise ValueError(
                    f"request is already resolved to workload "
                    f"{request.target.workload.name!r}; it cannot be "
                    f"overridden with workload={workload!r} — build the "
                    f"request with the desired workload instead"
                )
            return dataclasses.replace(request, workload=workload)
        if isinstance(request, str):
            return AnalysisRequest(app=request, workload=workload or "bench")
        if hasattr(request, "backend") and hasattr(request, "workload"):
            return AnalysisRequest.for_app(request, workload or "bench")
        raise TypeError(
            f"cannot interpret {request!r} as an analysis request; pass an "
            f"AnalysisRequest, a corpus app name, or an App model"
        )

    def analyze(
        self,
        request,
        *,
        workload: "str | None" = None,
        config: "AnalyzerConfig | None" = None,
        on_event: "EventCallback | None" = None,
        progress: "Callable[[str], None] | None" = None,
        use_cache: bool = True,
    ) -> AnalysisResult:
        """Analyze one request, memoized in the session database.

        *request* may be an :class:`AnalysisRequest`, a corpus app name
        (``session.analyze("redis")``), or an ``App`` model. *config*
        overrides the session default for this call only. A cached
        record only answers a request whose semantic config fields
        (replicas, guarding, bisection, priors, ...) match the run
        that produced it — engine knobs (parallel/cache/early_exit)
        change how fast an analysis runs, never what it concludes, and
        so never force a re-run. ``use_cache=False`` forces a fresh
        run (the new record still replaces the stored one).
        """
        coerced = self._coerce(request, workload)
        target = coerced.resolve()
        effective = config or self.config
        semantics = _config_semantics(effective)
        key = RecordKey(
            app=target.app,
            app_version=target.app_version,
            workload=target.workload.name,
            backend=backend_name(target.backend),
        )

        def cache_answers() -> bool:
            # Records this session produced answer only matching
            # semantics; preloaded records (no entry) are trusted.
            return key in self._database and self._semantics.get(
                key, semantics
            ) == semantics

        if use_cache:
            with self._lock:
                if cache_answers():
                    return self._database.get(key)
        # A config naming its own run_cache path wins (like every other
        # per-call override); otherwise the session default applies.
        # Either way one store per identity is shared across the
        # campaign (relative and absolute spellings of one file
        # resolve to the same store).
        store = (
            self._store_for(
                effective.run_cache, effective.run_cache_max_entries
            )
            if effective.run_cache
            else self.run_cache
        )
        emit = self._emitter(on_event, progress)
        with Analyzer(effective, store=store) as analyzer:
            result = analyzer.analyze(
                target.backend,
                target.workload,
                app=target.app,
                app_version=target.app_version,
                on_event=emit,
            )
        if store is not None and emit is not None:
            emit(dataclasses.replace(
                StoreStatsEvent.from_stats(store.stats()), app=target.app
            ))
        with self._lock:
            if use_cache and cache_answers():
                # A concurrent worker finished the same request first;
                # analyses are deterministic, so first write wins and
                # every caller sees one canonical record (this run's
                # result and stats are discarded together).
                return self._database.get(key)
            self._database.add(result)
            self._semantics[key] = semantics
            self.last_engine_stats = analyzer.engine.stats
            self.last_transfer_stats = analyzer.last_transfer_stats
        return result

    def analyze_many(
        self,
        requests: Iterable,
        *,
        jobs: int = 1,
        config: "AnalyzerConfig | None" = None,
        use_cache: bool = True,
    ) -> list[AnalysisResult]:
        """Analyze a batch of requests, ``jobs`` at a time.

        Requests share nothing but the lock-guarded session database;
        results come back in request order regardless of completion
        order.
        """
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        coerced = [self._coerce(request, None) for request in requests]
        if jobs == 1:
            return [
                self.analyze(request, config=config, use_cache=use_cache)
                for request in coerced
            ]
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="loupe-app"
        ) as pool:
            futures = [
                pool.submit(
                    self.analyze, request, config=config, use_cache=use_cache
                )
                for request in coerced
            ]
            return [future.result() for future in futures]

    def plan(
        self,
        *,
        os_name: str = "unikraft",
        apps: "str | Sequence" = "cloud",
        workload: str = "bench",
        support_csv: "str | None" = None,
    ):
        """An incremental support plan for *os_name* over *apps*.

        *apps* is ``"cloud"``, ``"corpus"``, or an explicit sequence of
        app models. The OS baseline comes from the named Table-1
        profile unless *support_csv* points at a syscall-support CSV.
        """
        from repro.appsim.corpus import cloud_apps, corpus
        from repro.plans import (
            SupportState,
            generate_plan,
            requirements_for_all,
            table1_states,
        )

        if apps == "cloud":
            app_models = cloud_apps()
        elif apps == "corpus":
            app_models = corpus()
        else:
            app_models = list(apps)
        requirements = requirements_for_all(app_models, workload)
        if support_csv:
            state = SupportState.load(support_csv, os_name=os_name)
        else:
            # The Table-1 baselines are always computed over the cloud
            # set; reuse the requirements just gathered when that is
            # what the caller targeted.
            cloud_requirements = (
                requirements
                if apps == "cloud"
                else requirements_for_all(cloud_apps(), workload)
            )
            states = table1_states(cloud_requirements)
            if os_name not in states:
                raise PlanError(
                    f"unknown OS {os_name!r}; choose from: "
                    f"{', '.join(sorted(states))} or pass a support CSV"
                )
            state = states[os_name]
        return generate_plan(state, requirements)

    def query(
        self,
        app: "str | None" = None,
        workload: "str | None" = None,
        *,
        backend: "str | None" = None,
    ) -> list[AnalysisResult]:
        """Records accumulated so far, optionally narrowed by
        app/workload/backend (``query()`` returns everything)."""
        database = self.database
        if app is None:
            return [
                result
                for name in database.apps()
                for result in database.find(
                    name, workload, backend=backend
                )
            ]
        return database.find(app, workload, backend=backend)
