"""Exception hierarchy for the Loupe reproduction.

Every error raised by this package derives from :class:`LoupeError` so
callers can catch the whole family with a single ``except`` clause.
"""

from __future__ import annotations


class LoupeError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class UnknownSyscallError(LoupeError, KeyError):
    """A syscall name or number is not present in the selected table."""

    def __init__(self, key: object, arch: str = "x86_64") -> None:
        super().__init__(f"unknown syscall {key!r} for architecture {arch}")
        self.key = key
        self.arch = arch


class PolicyError(LoupeError, ValueError):
    """An interposition policy is malformed or self-contradictory."""


class WorkloadError(LoupeError):
    """A workload description is invalid or its test script misbehaved."""


class BackendError(LoupeError):
    """An execution backend failed to run the target application."""


class PtraceUnavailableError(BackendError):
    """The host kernel refuses ptrace operations (e.g. seccomp'd sandbox)."""


class TraceeError(BackendError):
    """The traced process misbehaved in a way that invalidates the run."""


class AnalysisError(LoupeError):
    """The analyzer could not produce a coherent result."""


class AnalysisCancelledError(LoupeError):
    """An analysis was cancelled cooperatively before completing.

    Deliberately *not* an :class:`AnalysisError`: cancellation is a
    caller's decision, not an analysis failure, and handlers that
    treat ``AnalysisError`` as "the app broke" must not swallow it.
    Carries the engine's run accounting at the moment the
    cancellation was observed (``stats``), so a cancelled campaign
    still reports what it paid for before stopping.
    """

    def __init__(
        self, app: str = "", *, stats: "object | None" = None
    ) -> None:
        where = f" of {app!r}" if app else ""
        super().__init__(f"analysis{where} cancelled")
        self.app = app
        self.stats = stats


class FinalRunMismatchError(AnalysisError):
    """The combined final run contradicts the per-feature analysis.

    Carries the minimal conflicting feature sets discovered by the
    automated bisection (paper Section 3.1 notes this step "could be
    automated in future works"; this reproduction automates it).
    """

    def __init__(self, conflicts: tuple[tuple[str, ...], ...]) -> None:
        pretty = "; ".join(",".join(group) for group in conflicts) or "unknown"
        super().__init__(f"final combined run failed; conflicting sets: {pretty}")
        self.conflicts = conflicts


class ServiceUnavailableError(LoupeError):
    """The campaign service could not be reached after bounded retries.

    Raised by the service client once its transient-error retry budget
    (connection refused / reset on idempotent GETs) is exhausted —
    distinct from :class:`~repro.server.client.ServiceError`, which
    means the server *answered* with an error status. Carries the
    target URL, how many attempts were made, and the final transport
    error for the post-mortem.
    """

    def __init__(self, url: str, attempts: int, last_error: Exception) -> None:
        super().__init__(
            f"service at {url} unreachable after {attempts} attempt(s): "
            f"{last_error}"
        )
        self.url = url
        self.attempts = attempts
        self.last_error = last_error


class DatabaseError(LoupeError):
    """The results database is corrupt or a record is invalid."""


class PlanError(LoupeError):
    """Support-plan generation failed (e.g. unsatisfiable target set)."""


class StaticAnalysisError(LoupeError):
    """A static analyzer could not process its input binary or source."""


class ElfFormatError(StaticAnalysisError):
    """The input file is not a valid ELF object."""
