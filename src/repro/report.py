"""Reports: cross-backend validation + ASCII figure rendering.

Two kinds of report live here:

* **Cross-validation** (:class:`CrossValidationReport`,
  :func:`cross_validate`): the paper validates its dynamic
  measurements by comparing what different measurement methods
  observe for one workload (static vs. dynamic analysis, Fig. 5;
  per-OS reproduction, Table 1). The session's multi-target fan-out
  produces one :class:`~repro.core.result.AnalysisResult` per
  execution backend; :func:`cross_validate` diffs the observed
  syscall sets, sub-features, pseudo-files, and stub/fake verdicts
  across them and classifies every divergence
  (``missing-in-sim`` / ``extra-in-sim`` / ``count-only`` /
  ``verdict-differs`` / ``stability-differs``). Static-analysis
  targets (the ``static`` pseudo-backend) are diffed footprint-wise
  instead: syscalls only the static side reports are the paper's
  expected over-approximation (``static-overapproximation``), while a
  dynamically observed syscall absent from the static footprint is a
  hard ``soundness-violation``.
* **ASCII figures** (:func:`render_xy_plot` & friends): the benches
  print tabular rows; the plots show the curve *shapes* the paper's
  figures carry — dominance, crossovers, plateaus — without any
  plotting dependency.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping, Sequence

from repro.core.decisions import Verdict
from repro.core.result import AnalysisResult

_GLYPHS = ("*", "o", "+", "x", "#")


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def render_xy_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot named (x, y) series on one ASCII canvas.

    Later series overdraw earlier ones where they collide; the legend
    maps glyphs to names.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            canvas[row][column] = glyph

    lines = []
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            margin = f"{y_high:>8.0f} |"
        elif row_index == height - 1:
            margin = f"{y_low:>8.0f} |"
        else:
            margin = " " * 8 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_low:<10.0f}{x_label:^{max(width - 20, 0)}}{x_high:>10.0f}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def render_effort_curves(study) -> str:
    """Figure 2 as an ASCII plot (x: syscalls implemented, y: apps)."""
    series = {
        "loupe": [(float(x), float(y)) for x, y in study.loupe.points],
        "organic": [(float(x), float(y)) for x, y in study.organic.points],
        "naive": [(float(x), float(y)) for x, y in study.naive.points],
    }
    return render_xy_plot(
        series,
        x_label="syscalls implemented",
        y_label="apps supported",
    )


def render_importance_curves(figure) -> str:
    """Figure 3 as an ASCII plot (x: rank, y: importance %)."""
    naive = figure.naive.curve()
    loupe = figure.loupe.curve()
    series = {
        "naive": [(float(i + 1), 100.0 * v) for i, v in enumerate(naive)],
        "loupe": [(float(i + 1), 100.0 * v) for i, v in enumerate(loupe)],
    }
    return render_xy_plot(
        series,
        x_label="Nth most important syscall",
        y_label="API importance %",
    )


def render_bar_chart(
    rows: Mapping[str, float],
    *,
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labeled value."""
    if not rows:
        return "(no data)"
    peak = max(abs(v) for v in rows.values()) or 1.0
    label_width = max(len(label) for label in rows)
    lines = []
    for label, value in rows.items():
        bar = "#" * max(1, round(abs(value) / peak * width))
        lines.append(f"{label:<{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)


# -- cross-backend validation -------------------------------------------------

#: Divergence classes. The first three are the feature-set classes of
#: a Fig. 5-style comparison, named from the canonical real-vs-sim
#: reading (when the reference is the real-execution backend, a
#: feature it observed that the simulation missed is "missing in the
#: sim"); between two simulations they read relative to the reference
#: target. The last two cover conclusions rather than observations.
MISSING_IN_SIM = "missing-in-sim"      # reference saw it; target never did
EXTRA_IN_SIM = "extra-in-sim"          # target saw it; reference never did
COUNT_ONLY = "count-only"              # both saw it; invocation counts differ
VERDICT_DIFFERS = "verdict-differs"    # stub/fake decisions disagree
UNDECIDED_IN_TARGET = "undecided-in-target"  # one side never decided
STABILITY_DIFFERS = "stability-differs"  # combined-run stability disagrees
#: Static-vs-dynamic classes (Section 5.1). A sound static analysis
#: over-approximates: its footprint may exceed what any workload
#: dynamically exercises (expected, the paper's 2x-5x factors), but a
#: dynamically observed syscall missing from the footprint means the
#: static analysis is unsound — a hard error, never expected.
STATIC_OVERAPPROXIMATION = "static-overapproximation"
SOUNDNESS_VIOLATION = "soundness-violation"

DIVERGENCE_KINDS = (
    MISSING_IN_SIM,
    EXTRA_IN_SIM,
    COUNT_ONLY,
    VERDICT_DIFFERS,
    UNDECIDED_IN_TARGET,
    STABILITY_DIFFERS,
    STATIC_OVERAPPROXIMATION,
    SOUNDNESS_VIOLATION,
)


@dataclasses.dataclass(frozen=True)
class TargetObservation:
    """What one execution target observed for the shared workload.

    ``target`` is the registry name the campaign addressed (unique per
    fan-out even when two registry entries resolve to identically
    named execution backends); ``backend`` is the execution backend's
    own identity as recorded in the loupedb. ``verdicts`` maps every
    analyzed feature to its rendered stub/fake decision
    (``"stub=ok fake=no"``), across all granularities — syscalls,
    sub-features, and pseudo-files alike.
    """

    target: str
    backend: str
    app: str
    app_version: str
    workload: str
    real_execution: bool
    final_run_ok: bool
    syscalls: tuple[str, ...]
    subfeatures: tuple[str, ...]
    pseudo_files: tuple[str, ...]
    required: tuple[str, ...]
    stubbable: tuple[str, ...]
    fakeable: tuple[str, ...]
    traced_counts: Mapping[str, int]
    verdicts: Mapping[str, str]
    #: Features whose probes could not decide (replicas faulted without
    #: an observed failure) on this target; their verdict renders as
    #: ``"undecided"``. Empty on fully decided targets.
    undecided: tuple[str, ...] = ()
    #: True when this target is a static analyzer (its ``syscalls``
    #: are a footprint, not an execution trace); such observations are
    #: diffed footprint-wise. False on every dynamic target.
    static_analysis: bool = False

    @staticmethod
    def from_result(
        target: str, result: AnalysisResult, *,
        real_execution: bool = False, static_analysis: bool = False
    ) -> "TargetObservation":
        return TargetObservation(
            target=target,
            backend=result.backend,
            app=result.app,
            app_version=result.app_version,
            workload=result.workload,
            real_execution=real_execution,
            static_analysis=static_analysis,
            final_run_ok=result.final_run_ok,
            syscalls=tuple(sorted(result.traced_syscalls())),
            subfeatures=tuple(sorted(
                report.feature for report in result.subfeature_reports()
            )),
            pseudo_files=tuple(sorted(result.pseudo_files())),
            required=tuple(sorted(result.required_syscalls())),
            stubbable=tuple(sorted(result.stubbable_syscalls())),
            fakeable=tuple(sorted(result.fakeable_syscalls())),
            traced_counts={
                feature: report.traced_count
                for feature, report in sorted(result.features.items())
            },
            verdicts={
                feature: (
                    # "undecided" only when it IS the verdict: a feature
                    # with one decided capability (say stub=ok) renders
                    # its decided form even if the other side faulted.
                    "undecided"
                    if report.verdict is Verdict.UNDECIDED
                    else f"stub={'ok' if report.decision.can_stub else 'no'} "
                         f"fake={'ok' if report.decision.can_fake else 'no'}"
                )
                for feature, report in sorted(result.features.items())
            },
            undecided=tuple(sorted(
                feature for feature, report in result.features.items()
                if report.verdict is Verdict.UNDECIDED
            )),
        )

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        data["traced_counts"] = dict(self.traced_counts)
        data["verdicts"] = dict(self.verdicts)
        for field in ("syscalls", "subfeatures", "pseudo_files",
                      "required", "stubbable", "fakeable"):
            data[field] = list(data[field])
        if self.undecided:
            data["undecided"] = list(self.undecided)
        else:
            # Omitted when empty: fully decided observations keep the
            # pre-fault JSON form byte-identical.
            data.pop("undecided", None)
        if not self.static_analysis:
            # Same byte-compat rule: dynamic observations keep the
            # pre-static JSON form.
            data.pop("static_analysis", None)
        return data

    @staticmethod
    def from_dict(document: Mapping) -> "TargetObservation":
        return TargetObservation(
            target=document["target"],
            backend=document["backend"],
            app=document["app"],
            app_version=document["app_version"],
            workload=document["workload"],
            real_execution=bool(document["real_execution"]),
            final_run_ok=bool(document["final_run_ok"]),
            syscalls=tuple(document["syscalls"]),
            subfeatures=tuple(document["subfeatures"]),
            pseudo_files=tuple(document["pseudo_files"]),
            required=tuple(document["required"]),
            stubbable=tuple(document["stubbable"]),
            fakeable=tuple(document["fakeable"]),
            traced_counts={
                str(k): int(v)
                for k, v in document["traced_counts"].items()
            },
            verdicts={
                str(k): str(v) for k, v in document["verdicts"].items()
            },
            undecided=tuple(document.get("undecided", ())),
            static_analysis=bool(document.get("static_analysis", False)),
        )


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One classified disagreement between a target and the reference.

    ``dimension`` names what was compared (``syscalls`` /
    ``subfeatures`` / ``pseudo-files`` / ``verdict`` / ``stability``),
    ``kind`` one of :data:`DIVERGENCE_KINDS`, and ``detail`` a short
    human-readable account of both sides.
    """

    feature: str
    dimension: str
    kind: str
    reference: str
    target: str
    detail: str = ""

    def describe(self) -> str:
        line = f"[{self.kind}] {self.dimension} {self.feature} " \
               f"(vs {self.target})"
        if self.detail:
            line += f": {self.detail}"
        return line

    @staticmethod
    def from_dict(document: Mapping) -> "Divergence":
        return Divergence(
            feature=document["feature"],
            dimension=document["dimension"],
            kind=document["kind"],
            reference=document["reference"],
            target=document["target"],
            detail=document.get("detail", ""),
        )


def _diff_static_pair(reference: TargetObservation, target: TargetObservation):
    """Footprint-wise divergences when a static analyzer is involved.

    A static target's ``syscalls`` are a footprint — every call site
    the analysis can see, not what one workload exercised — so only
    the syscall sets are comparable. Synthetic counts, absent
    sub-feature/pseudo-file evidence, all-required verdicts, and the
    trivially stable combined run would otherwise drown the report in
    meaningless ``count-only``/``verdict-differs`` noise. Two static
    targets (say source vs binary level) fall back to the plain
    set-diff classes: between two footprints there is no soundness
    direction.
    """
    if reference.static_analysis and target.static_analysis:
        for feature in sorted(set(reference.syscalls) - set(target.syscalls)):
            yield Divergence(
                feature=feature, dimension="syscalls", kind=MISSING_IN_SIM,
                reference=reference.target, target=target.target,
                detail=f"in {reference.target} footprint, "
                       f"not in {target.target}'s",
            )
        for feature in sorted(set(target.syscalls) - set(reference.syscalls)):
            yield Divergence(
                feature=feature, dimension="syscalls", kind=EXTRA_IN_SIM,
                reference=reference.target, target=target.target,
                detail=f"in {target.target} footprint, "
                       f"not in {reference.target}'s",
            )
        return
    static, dynamic = (
        (reference, target) if reference.static_analysis
        else (target, reference)
    )
    footprint = set(static.syscalls)
    observed = set(dynamic.syscalls)
    for feature in sorted(footprint - observed):
        yield Divergence(
            feature=feature, dimension="syscalls",
            kind=STATIC_OVERAPPROXIMATION,
            reference=reference.target, target=target.target,
            detail=f"in {static.target} footprint, never observed by "
                   f"{dynamic.target}",
        )
    for feature in sorted(observed - footprint):
        count = dynamic.traced_counts.get(feature, 0)
        yield Divergence(
            feature=feature, dimension="syscalls", kind=SOUNDNESS_VIOLATION,
            reference=reference.target, target=target.target,
            detail=f"observed {count}x by {dynamic.target}, absent from "
                   f"{static.target} footprint",
        )


def _diff_pair(reference: TargetObservation, target: TargetObservation):
    """Classified divergences of one target against the reference.

    Deterministic: dimensions in a fixed order, features sorted within
    each, so two runs of the same campaign build identical reports.
    Pairs involving a static-analysis target take the footprint path
    (:func:`_diff_static_pair`) instead of the behavioral diff.
    """
    if reference.static_analysis or target.static_analysis:
        yield from _diff_static_pair(reference, target)
        return
    for dimension, attribute in (
        ("syscalls", "syscalls"),
        ("subfeatures", "subfeatures"),
        ("pseudo-files", "pseudo_files"),
    ):
        in_reference = set(getattr(reference, attribute))
        in_target = set(getattr(target, attribute))
        for feature in sorted(in_reference - in_target):
            count = reference.traced_counts.get(feature, 0)
            yield Divergence(
                feature=feature, dimension=dimension, kind=MISSING_IN_SIM,
                reference=reference.target, target=target.target,
                detail=f"observed {count}x by {reference.target}, "
                       f"never by {target.target}",
            )
        for feature in sorted(in_target - in_reference):
            count = target.traced_counts.get(feature, 0)
            yield Divergence(
                feature=feature, dimension=dimension, kind=EXTRA_IN_SIM,
                reference=reference.target, target=target.target,
                detail=f"observed {count}x by {target.target}, "
                       f"never by {reference.target}",
            )
        for feature in sorted(in_reference & in_target):
            ours = reference.traced_counts.get(feature)
            theirs = target.traced_counts.get(feature)
            if ours != theirs:
                yield Divergence(
                    feature=feature, dimension=dimension, kind=COUNT_ONLY,
                    reference=reference.target, target=target.target,
                    detail=f"{ours}x by {reference.target} vs "
                           f"{theirs}x by {target.target}",
                )
    shared = set(reference.verdicts) & set(target.verdicts)
    for feature in sorted(shared):
        if reference.verdicts[feature] != target.verdicts[feature]:
            # An undecided side is missing evidence, not a contradiction:
            # classify it apart from genuine verdict disagreements so
            # "re-run the flaky target" and "the backends disagree"
            # stay distinguishable in the report.
            either_undecided = "undecided" in (
                reference.verdicts[feature], target.verdicts[feature]
            )
            yield Divergence(
                feature=feature, dimension="verdict",
                kind=UNDECIDED_IN_TARGET if either_undecided
                else VERDICT_DIFFERS,
                reference=reference.target, target=target.target,
                detail=f"{reference.target}: {reference.verdicts[feature]}"
                       f" | {target.target}: {target.verdicts[feature]}",
            )
    if reference.final_run_ok != target.final_run_ok:
        def _stability(observation: TargetObservation) -> str:
            return "ok" if observation.final_run_ok else "failed"

        yield Divergence(
            feature="(combined-run)", dimension="stability",
            kind=STABILITY_DIFFERS,
            reference=reference.target, target=target.target,
            detail=f"final combined run {_stability(reference)} on "
                   f"{reference.target}, {_stability(target)} on "
                   f"{target.target}",
        )


@dataclasses.dataclass(frozen=True)
class CrossValidationReport:
    """Cross-backend comparison of one fanned-out (app, workload) campaign.

    ``reference`` names the observation every other target is diffed
    against — the first target whose capability contract declares
    ``real_execution`` (the paper's ground truth), else the campaign's
    first target. ``divergences`` is deterministic: targets in
    campaign order, dimensions in a fixed order, features sorted.
    An empty tuple means every compared target fully agreed with the
    reference (vacuously so for a single-target report — a duplicated
    spec like ``--backend appsim,appsim`` deduplicates to one leg).
    """

    app: str
    workload: str
    reference: str
    targets: tuple[str, ...]
    observations: tuple[TargetObservation, ...]
    divergences: tuple[Divergence, ...]

    @property
    def agrees(self) -> bool:
        """True when every target observed and concluded the same."""
        return not self.divergences

    def divergence_counts(self) -> dict[str, int]:
        """Per-kind totals, in :data:`DIVERGENCE_KINDS` order (zero
        kinds omitted)."""
        counts: dict[str, int] = {}
        for kind in DIVERGENCE_KINDS:
            total = sum(1 for d in self.divergences if d.kind == kind)
            if total:
                counts[kind] = total
        return counts

    def for_target(self, target: str) -> tuple[Divergence, ...]:
        """The divergences of one target against the reference."""
        return tuple(d for d in self.divergences if d.target == target)

    def soundness_violations(self) -> tuple[Divergence, ...]:
        """Dynamically observed syscalls a static footprint missed.

        Non-empty only when the campaign fanned over a static-analysis
        target whose footprint failed to cover a dynamic observation —
        the one static-vs-dynamic disagreement that is an error, not
        an expected over-approximation.
        """
        return tuple(
            d for d in self.divergences if d.kind == SOUNDNESS_VIOLATION
        )

    def to_dict(self) -> dict:
        """JSON-serializable form; :meth:`from_dict` round-trips it."""
        return {
            "app": self.app,
            "workload": self.workload,
            "reference": self.reference,
            "targets": list(self.targets),
            "observations": [obs.to_dict() for obs in self.observations],
            "divergences": [
                dataclasses.asdict(divergence)
                for divergence in self.divergences
            ],
        }

    @staticmethod
    def from_dict(document: Mapping) -> "CrossValidationReport":
        return CrossValidationReport(
            app=document["app"],
            workload=document["workload"],
            reference=document["reference"],
            targets=tuple(document["targets"]),
            observations=tuple(
                TargetObservation.from_dict(obs)
                for obs in document["observations"]
            ),
            divergences=tuple(
                Divergence.from_dict(divergence)
                for divergence in document["divergences"]
            ),
        )


def cross_validate(
    targets: Sequence[tuple[str, AnalysisResult, bool]],
    *,
    app: "str | None" = None,
    workload: "str | None" = None,
) -> CrossValidationReport:
    """Diff one campaign's per-target results into a report.

    *targets* is the campaign in order: ``(registry name, result,
    real_execution)`` triples — the flags usually come from the
    backend's :class:`~repro.core.runner.BackendCapabilities`. A
    fourth ``static_analysis`` element may be appended (the triple
    form stays valid) to mark a static-analyzer target whose result
    is a footprint rather than a trace. The reference is the first
    real-execution target, else the first dynamic (non-static)
    target, else the first target; every other target is diffed
    against it — static targets make a poor reference because their
    pairwise diffs are footprint-only.
    """
    if not targets:
        raise ValueError("cross_validate needs at least one target")
    observations = tuple(
        TargetObservation.from_result(
            entry[0], entry[1], real_execution=entry[2],
            static_analysis=entry[3] if len(entry) > 3 else False,
        )
        for entry in targets
    )
    reference = next(
        (obs for obs in observations if obs.real_execution),
        next(
            (obs for obs in observations if not obs.static_analysis),
            observations[0],
        ),
    )
    divergences: list[Divergence] = []
    for observation in observations:
        if observation is reference:
            continue
        divergences.extend(_diff_pair(reference, observation))
    return CrossValidationReport(
        app=app if app is not None else observations[0].app,
        workload=workload if workload is not None else observations[0].workload,
        reference=reference.target,
        targets=tuple(obs.target for obs in observations),
        observations=observations,
        divergences=tuple(divergences),
    )


def render_cross_validation(report: CrossValidationReport) -> str:
    """Terminal-friendly rendering of a cross-validation report."""
    lines = [
        f"cross-validation: {report.app}/{report.workload} across "
        f"{', '.join(report.targets)} (reference: {report.reference})"
    ]
    width = max(len(obs.target) for obs in report.observations)
    for obs in report.observations:
        marker = "*" if obs.target == report.reference else " "
        lines.append(
            f"{marker} {obs.target:<{width}} [{obs.backend}] "
            f"syscalls={len(obs.syscalls)} "
            f"subfeatures={len(obs.subfeatures)} "
            f"pseudo-files={len(obs.pseudo_files)} "
            f"required={len(obs.required)} "
            f"stubbable={len(obs.stubbable)} "
            f"fakeable={len(obs.fakeable)} "
            f"final={'ok' if obs.final_run_ok else 'FAILED'}"
        )
    if report.agrees:
        if len(report.observations) == 1:
            # Honest wording: one target means nothing was compared —
            # "agreement" here would be vacuous (a duplicated name
            # deduplicates to one leg; register a second name for a
            # real self-comparison).
            lines.append("single target: nothing to cross-validate")
        else:
            lines.append("backends agree: no divergences")
        return "\n".join(lines)
    counts = ", ".join(
        f"{total} {kind}"
        for kind, total in report.divergence_counts().items()
    )
    lines.append(f"divergences ({len(report.divergences)}): {counts}")
    for divergence in report.divergences:
        lines.append(f"  {divergence.describe()}")
    violations = report.soundness_violations()
    if violations:
        lines.append(
            f"SOUNDNESS: static footprint missed {len(violations)} "
            "dynamically observed syscall(s)"
        )
    return "\n".join(lines)
