"""Text rendering of the paper's figures: ASCII curves and bar charts.

The benches print tabular rows; this module adds terminal-friendly
plots so `loupe study fig2/fig3` and the examples can show the curve
*shapes* the paper's figures carry — dominance, crossovers, plateaus —
without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

_GLYPHS = ("*", "o", "+", "x", "#")


def _scale(value: float, low: float, high: float, cells: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(cells - 1, max(0, round(position * (cells - 1))))


def render_xy_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot named (x, y) series on one ASCII canvas.

    Later series overdraw earlier ones where they collide; the legend
    maps glyphs to names.
    """
    points = [p for pts in series.values() for p in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, pts) in enumerate(series.items()):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for x, y in pts:
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(y, y_low, y_high, height)
            canvas[row][column] = glyph

    lines = []
    for row_index, row in enumerate(canvas):
        if row_index == 0:
            margin = f"{y_high:>8.0f} |"
        elif row_index == height - 1:
            margin = f"{y_low:>8.0f} |"
        else:
            margin = " " * 8 + " |"
        lines.append(margin + "".join(row))
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(
        " " * 9 + f"{x_low:<10.0f}{x_label:^{max(width - 20, 0)}}{x_high:>10.0f}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 9 + legend + (f"   (y: {y_label})" if y_label else ""))
    return "\n".join(lines)


def render_effort_curves(study) -> str:
    """Figure 2 as an ASCII plot (x: syscalls implemented, y: apps)."""
    series = {
        "loupe": [(float(x), float(y)) for x, y in study.loupe.points],
        "organic": [(float(x), float(y)) for x, y in study.organic.points],
        "naive": [(float(x), float(y)) for x, y in study.naive.points],
    }
    return render_xy_plot(
        series,
        x_label="syscalls implemented",
        y_label="apps supported",
    )


def render_importance_curves(figure) -> str:
    """Figure 3 as an ASCII plot (x: rank, y: importance %)."""
    naive = figure.naive.curve()
    loupe = figure.loupe.curve()
    series = {
        "naive": [(float(i + 1), 100.0 * v) for i, v in enumerate(naive)],
        "loupe": [(float(i + 1), 100.0 * v) for i, v in enumerate(loupe)],
    }
    return render_xy_plot(
        series,
        x_label="Nth most important syscall",
        y_label="API importance %",
    )


def render_bar_chart(
    rows: Mapping[str, float],
    *,
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bars, one per labeled value."""
    if not rows:
        return "(no data)"
    peak = max(abs(v) for v in rows.values()) or 1.0
    label_width = max(len(label) for label in rows)
    lines = []
    for label, value in rows.items():
        bar = "#" * max(1, round(abs(value) / peak * width))
        lines.append(f"{label:<{label_width}} | {bar} {value:g}{unit}")
    return "\n".join(lines)
