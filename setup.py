"""Setuptools shim.

Kept so ``python setup.py develop`` works on minimal environments
without the ``wheel`` package (PEP 660 editable installs require it).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
