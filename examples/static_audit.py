#!/usr/bin/env python3
"""Static soundness audit: lint the corpus, diff static vs dynamic.

The paper's Section 5.1 compares Loupe's dynamic measurements against
static analysis and finds static over-approximates by 2-5x — useful as
a sound upper bound, useless as an implementation plan. This example
runs that comparison end to end:

1. lint the shipped application corpus — every model's static
   footprint must name real syscalls, every feature branch must be
   reachable, every declaration honored by its backend's contract;
2. cross-validate the ``static`` pseudo-backend against the dynamic
   appsim backend for one app: the expected divergences are all
   ``static-overapproximation`` (footprint entries dynamics never
   observed) and there must be zero soundness violations;
3. audit the session's accumulated dynamic results database against
   the static footprints, corpus-wide.

Run:  python examples/static_audit.py
"""

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import build, cloud_apps
from repro.report import STATIC_OVERAPPROXIMATION
from repro.staticx import audit_database, exit_code, lint_corpus


def main() -> None:
    # 1. Lint the corpus models themselves.
    apps = cloud_apps()
    findings = lint_corpus(apps)
    print(f"lint: {len(apps)} cloud app models checked, "
          f"{len(findings)} finding(s) (exit code {exit_code(findings)})")
    for finding in findings:
        print(f"  {finding.describe()}")

    # 2. Static vs dynamic for one app, through the same fan-out path
    #    `loupe compare --backends static,appsim` uses.
    session = LoupeSession()
    app = build("weborf")
    report = session.compare(AnalysisRequest(
        app=app.name, workload="health", backend="static,appsim"
    ))
    over = [d for d in report.divergences
            if d.kind == STATIC_OVERAPPROXIMATION]
    dynamic = next(o for o in report.observations if not o.static_analysis)
    static = next(o for o in report.observations if o.static_analysis)
    print(f"\nstatic vs dynamic for {app.name}/health:")
    print(f"  static footprint:      {len(static.syscalls)} syscalls")
    print(f"  dynamically observed:  {len(dynamic.syscalls)} syscalls")
    print(f"  over-approximation:    {len(over)} syscalls static lists "
          f"but dynamics never observed "
          f"({len(static.syscalls) / len(dynamic.syscalls):.1f}x)")
    violations = report.soundness_violations()
    print(f"  soundness violations:  {len(violations)} "
          f"(static must cover everything dynamics observed)")
    assert not violations, "static analysis missed an observed syscall!"

    # 3. Sweep every stored dynamic record against the footprints.
    for candidate in apps:
        session.analyze(AnalysisRequest(app=candidate.name,
                                        workload="health"))
    audit = audit_database(session.database, level="binary")
    records = sum(1 for _ in session.database)
    print(f"\ndatabase audit: {records} stored result(s) swept, "
          f"{len(audit)} finding(s)")
    for finding in audit:
        print(f"  {finding.describe()}")
    print("audit verdict: " + ("CLEAN" if not audit else "VIOLATIONS"))


if __name__ == "__main__":
    main()
