#!/usr/bin/env python3
"""Real-substrate demo: ptrace interposition and static scanning on
live binaries.

Three experiments on /bin/echo (no simulation anywhere):

1. trace it — see the glibc init sequence of the paper's Table 4 live;
2. stub vs fake its ``write`` — stubbing is detected by the program,
   faking goes unnoticed (and silences the output);
3. statically scan a binary for syscall instructions and compare
   against the dynamic trace — static analysis overestimates, exactly
   as Section 5.1 measures.

Run:  python examples/real_tracing.py
"""

import shutil
import subprocess
import tempfile
from pathlib import Path

from repro.core.policy import faking, passthrough, stubbing
from repro.ptracer import SyscallTracer, ptrace_works
from repro.staticx import scan_binary


def trace_demo() -> None:
    print("=== 1. live trace of /bin/echo ===")
    outcome = SyscallTracer(passthrough()).run(["/bin/echo", "hello, loupe"])
    plain = sorted(k for k in outcome.traced if ":" not in k)
    print(f"exit code {outcome.exit_code}; {len(plain)} distinct syscalls:")
    print("  " + ", ".join(plain))
    subfeatures = sorted(k for k in outcome.traced if ":" in k)
    print("decoded sub-features (Section 5.4, live): " + ", ".join(subfeatures))
    print()


def stub_fake_demo() -> None:
    print("=== 2. stub vs fake write(2) ===")
    stubbed = SyscallTracer(stubbing("write")).run(["/bin/echo", "x"])
    print(f"stub  write -> exit {stubbed.exit_code}  "
          "(echo checks the return value and fails)")
    faked = SyscallTracer(faking("write")).run(["/bin/echo", "you never see this"])
    print(f"fake  write -> exit {faked.exit_code}  "
          "(the forged byte count satisfies echo; nothing was printed)")
    print()


def static_vs_dynamic_demo() -> None:
    print("=== 3. static scan vs dynamic trace ===")
    if shutil.which("gcc") is None:
        print("gcc unavailable; skipping the static-linking comparison")
        return
    source = "#include <stdio.h>\nint main(void){ printf(\"hi\\n\"); return 0; }\n"
    with tempfile.TemporaryDirectory() as tmp:
        src = Path(tmp) / "hello.c"
        binary = Path(tmp) / "hello"
        src.write_text(source)
        subprocess.run(
            ["gcc", "-O2", "-static", "-o", str(binary), str(src)],
            check=True, capture_output=True,
        )
        report = scan_binary(binary)
        outcome = SyscallTracer(passthrough()).run([str(binary)])
        traced = {k for k in outcome.traced if ":" not in k}
        print(f"static-linked hello-world:")
        print(f"  static binary scan : {len(report.syscalls)} syscalls "
              f"at {report.sites} call sites")
        print(f"  dynamic trace      : {len(traced)} syscalls actually used")
        print(f"  overestimation     : "
              f"{len(report.syscalls) / max(len(traced), 1):.1f}x "
              "(the Section 5.1 effect, on a real ELF)")


def main() -> None:
    if not ptrace_works():
        print("this environment denies ptrace(2); demo unavailable here")
        return
    trace_demo()
    stub_fake_demo()
    static_vs_dynamic_demo()


if __name__ == "__main__":
    main()
