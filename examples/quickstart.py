#!/usr/bin/env python3
"""Quickstart: measure what an OS must implement to run Redis.

This is the paper's core workflow end to end:

1. pick an application and a workload (here: redis + redis-benchmark);
2. run the Loupe analysis — trace, then probe every syscall stubbed
   and faked, over 3 replicas, with a final combined confirmation run;
3. read the report: what to implement, what to stub, what to fake, and
   where stubbing/faking moves performance or resource usage.

Run:  python examples/quickstart.py
"""

from repro import Analyzer, AnalyzerConfig
from repro.appsim.corpus import build


def main() -> None:
    app = build("redis")
    analyzer = Analyzer(AnalyzerConfig(replicas=3, pseudo_files=True))

    print(f"analyzing {app.name} {app.version} under '{app.bench.name}' "
          f"({app.bench.metric_name})...\n")
    result = analyzer.analyze(
        app.backend(), app.bench, app=app.name, app_version=app.version
    )

    traced = sorted(result.traced_syscalls())
    required = sorted(result.required_syscalls())
    stubbable = sorted(result.stubbable_syscalls())
    fake_only = sorted(result.fakeable_syscalls() - result.stubbable_syscalls())

    print(f"invoked syscalls ({len(traced)}):")
    print("  " + ", ".join(traced))
    print(f"\nmust implement ({len(required)}):")
    print("  " + ", ".join(required))
    print(f"\ncan stub with -ENOSYS ({len(stubbable)}):")
    print("  " + ", ".join(stubbable))
    print(f"\ncan only fake success ({len(fake_only)}):")
    print("  " + ", ".join(fake_only))
    print(f"\npseudo-files: {', '.join(sorted(result.pseudo_files()))}")

    print("\nmetric red flags (stub/fake changes performance or resources):")
    for report in result.impacted_features():
        stub = report.stub_impact.describe() if report.stub_impact else "-"
        fake = report.fake_impact.describe() if report.fake_impact else "-"
        print(f"  {report.feature:<16} stub: {stub:<22} fake: {fake}")

    avoidable = len(result.avoidable_syscalls())
    print(
        f"\nbottom line: {avoidable} of {len(traced)} invoked syscalls "
        f"({avoidable / len(traced):.0%}) need no real implementation to "
        f"run redis-benchmark — the paper's message of hope."
    )


if __name__ == "__main__":
    main()
