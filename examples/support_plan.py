#!/usr/bin/env python3
"""Support planning: drive your OS's compatibility layer with Loupe.

Scenario: you are building a new OS. You write the syscalls you already
support into a CSV (one name per line), pick the applications you want
to run, and Loupe tells you the cheapest path — which syscalls to
implement, stub, or fake, in what order, to unlock the most apps as
early as possible (paper Section 4.1).

Run:  python examples/support_plan.py
"""

import tempfile
from pathlib import Path

from repro.appsim.corpus import cloud_apps
from repro.plans import (
    SupportState,
    generate_plan,
    render_plan,
    requirements_for_all,
)

#: What our hypothetical young OS already implements: the common core
#: any libc needs, plus basic sockets — about kerla-level maturity.
MY_OS_SYSCALLS = """
read write close openat fstat newfstatat lseek mmap mprotect munmap brk
rt_sigaction rt_sigprocmask ioctl access execve exit exit_group wait4
getpid gettid arch_prctl set_tid_address futex clone socket bind listen
accept setsockopt getsockopt sendto recvfrom uname getcwd fcntl dup dup2
getuid geteuid getgid getegid pread64 pwrite64 stat getrandom
""".split()


def main() -> None:
    # 1. Persist the OS state the way the paper describes: CSV.
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "my-os.csv"
        state = SupportState("my-os", implemented=set(MY_OS_SYSCALLS))
        state.save(csv_path)
        print(f"OS state: {len(state.implemented)} syscalls implemented "
              f"(saved to {csv_path.name})\n")
        state = SupportState.load(csv_path)

        # 2. Analyze the target applications (memoized corpus analyses).
        apps = cloud_apps()
        print(f"analyzing {len(apps)} target applications under their "
              f"benchmark workloads...")
        requirements = requirements_for_all(apps, "bench")

        # 3. Generate and print the incremental plan.
        plan = generate_plan(state, requirements)
        print()
        print(render_plan(plan, syscall_numbers=False))

        print(
            f"\nreading: {len(plan.initially_supported)} apps already run "
            f"({', '.join(plan.initially_supported)}); each step unlocks "
            "one more, cheapest first; MongoDB — the deepest syscall "
            "consumer — lands last, exactly as in the paper's Table 1."
        )


if __name__ == "__main__":
    main()
