#!/usr/bin/env python3
"""Corpus-scale study: the paper's Section 4/5 analyses in one run.

Analyzes the full 116-application corpus (a few seconds — analyses are
memoized like the shared loupedb) and prints:

* the Figure 3 importance curves as an ASCII plot,
* the Figure 2 engineering-effort curves for 62 OSv-style apps,
* a support plan for a fresh OS over the whole corpus,
* the knowledge-transfer effect: how much cheaper analyzing a new app
  becomes once the corpus experience exists.

Run:  python examples/corpus_study.py
"""

from repro.appsim.corpus import corpus
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.transfer import PriorKnowledge
from repro.plans import run_effort_study
from repro.report import render_effort_curves, render_importance_curves
from repro.study import analyze_apps, figure3


def main() -> None:
    apps = corpus()
    print(f"analyzing {len(apps)} applications under benchmark workloads...")
    results = analyze_apps(apps, "bench")

    fig = figure3(results)
    print("\n=== Figure 3: API importance, Loupe vs naive ===")
    print(render_importance_curves(fig))
    print(
        f"\nnaive dynamic analysis claims {fig.naive.total_syscalls()} "
        f"syscalls are needed; Loupe shows only "
        f"{fig.loupe.total_syscalls()} truly are."
    )

    print("\n=== Figure 2: three ways to build OSv's compat layer ===")
    study = run_effort_study(apps[:62])
    print(render_effort_curves(study))
    half = study.at_half()
    print(
        f"\nsupporting {half['apps']} apps costs {half['loupe']} syscalls "
        f"with Loupe's plan, {half['organic']} organically, "
        f"{half['naive']} with naive strace-driven development."
    )

    print("\n=== Knowledge transfer (Section 6 future work) ===")
    priors = PriorKnowledge.from_results(results)
    target = apps[40]
    analyzer = Analyzer(AnalyzerConfig(replicas=3, priors=priors))
    analyzer.analyze(target.backend(), target.bench)
    stats = analyzer.last_transfer_stats
    print(
        f"with priors from {len(results)} analyses, probing {target.name} "
        f"fast-pathed {stats.fast_path_rate:.0%} of its features and saved "
        f"{stats.runs_saved} runs ({stats.fallbacks} fallbacks)."
    )


if __name__ == "__main__":
    main()
