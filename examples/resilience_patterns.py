#!/usr/bin/env python3
"""The Figure 6 resilience patterns, executed.

The paper's Section 5.2 catalogs why programs survive stubbing and
faking. This example drives each mechanism individually through the
simulator and shows the run outcome:

* safe default    — Redis's getrlimit/prlimit64 (Figure 6a)
* fatal-but-fakeable — Nginx's prctl(PR_SET_KEEPCAPS) (Figure 6b)
* fallback        — glibc's brk -> mmap; SQLite's mremap -> mmap
* disable feature — glibc's NSCD connect
* silent breakage — Redis's pipe2 under a benchmark vs the suite

Run:  python examples/resilience_patterns.py
"""

from repro.appsim.corpus import build
from repro.core.policy import faking, passthrough, stubbing


def show(label: str, run, detail: str) -> None:
    verdict = "passes" if run.success else "FAILS"
    print(f"  {label:<28} -> {verdict:<7} {detail}")


def main() -> None:
    redis = build("redis")
    nginx = build("nginx")
    sqlite = build("sqlite")

    print("safe default (Figure 6a): Redis assumes 1024 fds when "
          "prlimit64 fails")
    show(
        "stub prlimit64",
        redis.backend().run(redis.bench, stubbing("prlimit64")),
        "(maxclients falls back to a safe default)",
    )

    print("\nfatal-but-fakeable (Figure 6b): Nginx exits when "
          "prctl fails, yet capabilities are meaningless on a unikernel")
    show(
        "stub prctl",
        nginx.backend().run(nginx.bench, stubbing("prctl")),
        "(ngx_log_error + exit(2))",
    )
    show(
        "fake prctl",
        nginx.backend().run(nginx.bench, faking("prctl")),
        "(forged success: nothing depended on the real effect)",
    )

    print("\nfallback: SQLite re-allocates with mmap when mremap fails")
    show(
        "stub mremap",
        sqlite.backend().run(sqlite.bench, stubbing("mremap")),
        "(the fallback path re-maps and carries on)",
    )

    print("\ndisable-feature: glibc turns off NSCD caching when "
          "connect fails")
    show(
        "stub connect",
        redis.backend().run(redis.bench, stubbing("connect")),
        "(name caching disabled; nobody notices)",
    )

    print("\nsilent breakage: faking pipe2 quietly kills Redis persistence")
    show(
        "fake pipe2, benchmark",
        redis.backend().run(redis.bench, faking("pipe2")),
        "(redis-benchmark never touches persistence)",
    )
    show(
        "fake pipe2, test suite",
        redis.backend().run(redis.suite, faking("pipe2")),
        "(the suite exercises persistence and catches it)",
    )

    print("\nmetric red flag: faking futex passes the benchmark script "
          "but wrecks the numbers")
    base = redis.backend().run(redis.bench, passthrough())
    fake = redis.backend().run(redis.bench, faking("futex"))
    print(f"  baseline throughput: {base.metric:,.0f} SET/s, "
          f"{base.resources.fd_peak} fds")
    print(f"  faked futex        : {fake.metric:,.0f} SET/s, "
          f"{fake.resources.fd_peak} fds   "
          "(Table 2's -66% / +94% — 'not a correct path to follow')")


if __name__ == "__main__":
    main()
