#!/usr/bin/env python3
"""Partial implementation of vectored syscalls (paper Section 5.4).

Whole-syscall accounting overstates the work: ``arch_prctl`` has six
operations but applications only need ``ARCH_SET_FS``; ``prlimit64``
spans sixteen resources of which three appear in practice; ``fcntl``
mixes a required command (``F_SETFL``) with an always-stubbable one
(``F_SETFD``). Running the analyzer at sub-feature granularity shows
exactly which slice of each vectored syscall a compatibility layer
must provide.

Run:  python examples/partial_implementation.py
"""

from repro import Analyzer, AnalyzerConfig
from repro.appsim.corpus import build
from repro.core.partial import summarize


def main() -> None:
    app = build("redis")
    config = AnalyzerConfig(replicas=3, subfeature_level=True)
    print(f"analyzing {app.name} at sub-feature granularity...\n")
    result = Analyzer(config).analyze(app.backend(), app.bench)

    summaries = summarize(result)
    header = (f"{'syscall':<12} {'ops total':>9} {'used':>5} "
              f"{'required':>9}  details")
    print(header)
    print("-" * len(header))
    for name, summary in sorted(summaries.items()):
        details = []
        if summary.required:
            details.append("required: " + ", ".join(summary.required))
        stubbable_only = [
            op for op in summary.stubbable if op not in summary.required
        ]
        if stubbable_only:
            details.append("stubbable: " + ", ".join(stubbable_only))
        print(
            f"{name:<12} {summary.total_operations:>9} "
            f"{len(summary.used):>5} {len(summary.required):>9}  "
            + "; ".join(details)
        )

    print("\nreading:")
    fcntl = summaries["fcntl"]
    print(
        f"- fcntl needs {len(fcntl.required)}/{fcntl.total_operations} "
        "operations implemented (F_SETFL puts sockets in non-blocking "
        "mode); F_SETFD is close-on-exec bookkeeping and stubs fine."
    )
    prlimit = summaries["prlimit64"]
    print(
        f"- prlimit64 is used through {len(prlimit.used)}/"
        f"{prlimit.total_operations} resources and none requires a real "
        "implementation for this workload."
    )
    arch = summaries["arch_prctl"]
    print(
        f"- arch_prctl: {len(arch.used)}/{arch.total_operations} operations "
        "used (ARCH_SET_FS, the libc TLS setup) — and that one is required."
    )


if __name__ == "__main__":
    main()
