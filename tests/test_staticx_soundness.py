"""Soundness property: static footprint ⊇ dynamic, for every corpus app.

The paper's Section 5.1 invariant — a sound static analysis reports a
superset of anything dynamics can observe — is what makes the
``static`` pseudo-backend's over-approximation *expected* and a miss a
hard error. The corpus construction (``with_static_views`` /
``calibrated_static``) is supposed to guarantee it by building the
views up from the op set; these tests check the guarantee instead of
trusting it, across the whole corpus and under Hypothesis-sampled
workload/level combinations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appsim.corpus import cloud_apps, corpus
from repro.core.policy import passthrough
from repro.plans.requirements import requirements_for

_CORPUS = corpus()
_LEVELS = ("source", "binary")


def _every_reachable_syscall(app):
    """Union of op syscalls over all declared workloads' feature gates."""
    reachable = set()
    for workload in app.workloads.values():
        exercised = workload.features_exercised
        for op in app.program.ops:
            if op.when is None or op.when & exercised:
                reachable.add(op.syscall)
    return reachable


class TestCorpusWideSoundness:
    def test_static_covers_every_reachable_op_for_all_apps(self):
        # Exhaustive and cheap: no runs needed — anything dynamics
        # could ever trace comes from a reachable op, so op-level
        # coverage implies trace-level coverage for all 116 apps.
        for app in _CORPUS:
            reachable = _every_reachable_syscall(app)
            for level in _LEVELS:
                footprint = app.program.static_view(level)
                missing = reachable - footprint
                assert not missing, (
                    f"{app.name}: {level} footprint misses {sorted(missing)}"
                )

    def test_binary_view_covers_source_view_for_all_apps(self):
        for app in _CORPUS:
            source = app.program.static_view("source")
            binary = app.program.static_view("binary")
            assert source <= binary, app.name


class TestSampledDynamicSoundness:
    @settings(deadline=None, max_examples=30)
    @given(
        app=st.sampled_from(cloud_apps()),
        workload_name=st.sampled_from(("health", "bench", "suite")),
        level=st.sampled_from(_LEVELS),
    )
    def test_traced_syscalls_within_footprint(
        self, app, workload_name, level
    ):
        # An actual dynamic observation: one passthrough run of the
        # simulated app. Every syscall it traces must be in both
        # static views (source and binary alike).
        result = app.backend().run(app.workload(workload_name), passthrough())
        traced = set(result.syscalls())
        footprint = app.program.static_view(level)
        assert traced <= footprint, sorted(traced - footprint)

    @settings(deadline=None, max_examples=20)
    @given(
        app=st.sampled_from(cloud_apps()),
        workload_name=st.sampled_from(("health", "bench", "suite")),
        level=st.sampled_from(_LEVELS),
    )
    def test_required_set_within_footprint(self, app, workload_name, level):
        # Stronger: the full analysis' required set (memoized via
        # requirements_for, so repeat examples are cheap) is a subset
        # of the traced set and therefore of the footprint too.
        requirements = requirements_for(app, workload_name)
        footprint = app.program.static_view(level)
        assert requirements.required <= footprint, sorted(
            set(requirements.required) - footprint
        )
