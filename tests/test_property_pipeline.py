"""Property-based tests of the whole analysis pipeline.

Hypothesis generates random simulated programs (random syscalls,
failure policies, fake reactions, features, gating) and we assert the
analyzer's structural invariants hold for *every* one of them — the
kind of guarantees the paper's algorithm implicitly relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import (
    abort,
    as_failure,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.policy import combined
from repro.core.workload import benchmark, health_check, test_suite

_SYSCALLS = (
    "read write close openat fstat mmap brk munmap uname getpid sysinfo "
    "prctl setsid umask futex clone socket bind pipe2 fsync rename "
    "getrandom nanosleep kill dup2 getcwd"
).split()

_FEATURES = ("core", "alpha", "beta")


@st.composite
def stub_reactions(draw):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return ignore()
    if kind == 1:
        return abort()
    if kind == 2:
        return safe_default()
    if kind == 3:
        return disable(draw(st.sampled_from(_FEATURES[1:])))
    return ignore(fd_frac=draw(st.floats(-0.2, 1.0)))


@st.composite
def fake_reactions(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return harmless()
    if kind == 1:
        return breaks_core()
    if kind == 2:
        return breaks(draw(st.sampled_from(_FEATURES[1:])))
    return as_failure()


@st.composite
def programs(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    chosen = draw(
        st.lists(
            st.sampled_from(_SYSCALLS), min_size=count, max_size=count,
            unique=True,
        )
    )
    ops = []
    for syscall in chosen:
        feature = draw(st.sampled_from(_FEATURES))
        gated = draw(st.booleans()) and feature != "core"
        ops.append(
            SyscallOp(
                syscall=syscall,
                count=draw(st.integers(1, 5)),
                feature=feature,
                when=frozenset({feature}) if gated else None,
                checks_return=draw(st.booleans()),
                on_stub=draw(stub_reactions()),
                on_fake=draw(fake_reactions()),
            )
        )
    return SimProgram(
        name="prop",
        version="1",
        ops=tuple(ops),
        features=frozenset(_FEATURES),
        profiles={"*": WorkloadProfile(metric=1000.0, fd_peak=32,
                                       mem_peak_kb=4096)},
    )


WORKLOADS = (
    health_check("health"),
    benchmark("bench", metric_name="ops/s", features=("core", "alpha")),
    test_suite("suite", features=_FEATURES),
)


@settings(max_examples=40, deadline=None)
@given(programs(), st.sampled_from(WORKLOADS))
def test_analysis_invariants(program, workload):
    backend = SimBackend(program)
    analyzer = Analyzer(AnalyzerConfig(replicas=2))
    result = analyzer.analyze(backend, workload)

    traced = result.traced_syscalls()
    required = result.required_syscalls()
    stubbable = result.stubbable_syscalls()
    fakeable = result.fakeable_syscalls()

    # Partition invariants.
    assert required <= traced
    assert stubbable <= traced
    assert fakeable <= traced
    assert required.isdisjoint(stubbable | fakeable)
    assert required | stubbable | fakeable == traced

    # The combined policy derived from the (possibly demoted) decisions
    # must actually pass — that is what final_run_ok certifies.
    assert result.final_run_ok
    policy = combined(
        stubs=sorted(stubbable),
        fakes=sorted(fakeable - stubbable),
    )
    rerun = backend.run(workload, policy)
    assert rerun.success

    # Every traced feature got a report with a sane count.
    for name in traced:
        assert result.features[name].traced_count >= 1


@settings(max_examples=25, deadline=None)
@given(programs())
def test_workload_monotonicity(program):
    """A workload exercising strictly more features can only move
    features toward REQUIRED, never away from it."""
    backend = SimBackend(program)
    analyzer = Analyzer(AnalyzerConfig(replicas=2))
    weak = analyzer.analyze(backend, health_check("health"))
    strong = analyzer.analyze(backend, test_suite("suite", features=_FEATURES))
    for name in weak.required_syscalls():
        if name in strong.traced_syscalls():
            assert name in strong.required_syscalls()


@settings(max_examples=25, deadline=None)
@given(programs())
def test_serialization_roundtrip_for_random_results(program):
    from repro.core.result import AnalysisResult

    backend = SimBackend(program)
    result = Analyzer(AnalyzerConfig(replicas=2)).analyze(
        backend, health_check("health")
    )
    assert AnalysisResult.from_dict(result.to_dict()).to_dict() == result.to_dict()
