"""Tests for the results database (loupedb analog)."""

import json

import pytest

from repro.core.decisions import Decision
from repro.core.metrics import SampleStats
from repro.core.result import AnalysisResult, BaselineStats, FeatureReport
from repro.core.workload import WorkloadKind
from repro.db import Database, RecordKey
from repro.errors import DatabaseError


def _result(app="redis", workload="bench", required=("read",)):
    features = {
        name: FeatureReport(
            feature=name, traced_count=1, decision=Decision(False, False)
        )
        for name in required
    }
    return AnalysisResult(
        app=app,
        app_version="1.0",
        workload=workload,
        workload_kind=WorkloadKind.BENCHMARK,
        backend="sim:x",
        replicas=3,
        features=features,
        baseline=BaselineStats(
            metric=SampleStats.of([1.0]),
            fd=SampleStats.of([1.0]),
            mem=SampleStats.of([1.0]),
        ),
    )


class TestCrud:
    def test_add_and_get(self):
        db = Database()
        result = _result()
        db.add(result)
        assert len(db) == 1
        assert db.get(RecordKey.of(result)).app == "redis"

    def test_get_missing_raises(self):
        with pytest.raises(DatabaseError):
            Database().get(RecordKey("a", "1", "bench", "sim"))

    def test_no_overwrite_mode(self):
        db = Database()
        db.add(_result())
        with pytest.raises(DatabaseError):
            db.add(_result(), overwrite=False)

    def test_find(self):
        db = Database.collect(
            [_result(), _result(workload="suite"), _result(app="nginx")]
        )
        assert len(db.find("redis")) == 2
        assert len(db.find("redis", "suite")) == 1
        assert db.apps() == ["nginx", "redis"]

    def test_contains_and_iter(self):
        result = _result()
        db = Database.collect([result])
        assert RecordKey.of(result) in db
        assert [r.app for r in db] == ["redis"]


class TestMerge:
    def test_merge_adds_and_counts(self):
        a = Database.collect([_result()])
        b = Database.collect([_result(app="nginx")])
        changed = a.merge(b)
        assert changed == 1
        assert len(a) == 2

    def test_merge_overwrites_collisions(self):
        a = Database.collect([_result(required=("read",))])
        b = Database.collect([_result(required=("read", "write"))])
        changed = a.merge(b)
        assert changed == 1
        record = a.find("redis")[0]
        assert record.required_syscalls() == {"read", "write"}

    def test_merge_structurally_equal_records_report_no_change(self, tmp_path):
        # The same records loaded from two files are distinct objects;
        # a payload-level merge must still see them as unchanged.
        path = tmp_path / "db.json"
        Database.collect([_result(), _result(app="nginx")]).save(path)
        a = Database.load(path)
        b = Database.load(path)
        assert a.merge(b) == 0
        assert len(a) == 2

    def test_merge_same_object_reports_no_change(self):
        result = _result()
        a = Database.collect([result])
        b = Database.collect([result])
        assert a.merge(b) == 0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        db = Database.collect([_result(), _result(app="nginx")])
        path = tmp_path / "loupedb.json"
        db.save(path)
        loaded = Database.load(path)
        assert len(loaded) == 2
        assert loaded.apps() == db.apps()

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatabaseError):
            Database.load(path)

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema": 999, "records": {}}))
        with pytest.raises(DatabaseError):
            Database.load(path)

    def test_key_payload_mismatch_rejected(self, tmp_path):
        db = Database.collect([_result()])
        document = db.to_document()
        (key,) = document["records"]
        document["records"]["x|1|bench|sim"] = document["records"].pop(key)
        with pytest.raises(DatabaseError):
            Database.from_document(document)

    def test_document_stable_order(self):
        db = Database.collect([_result(app="zz"), _result(app="aa")])
        keys = list(db.to_document()["records"])
        assert keys == sorted(keys)


class TestMetadata:
    def test_roundtrip(self, tmp_path):
        db = Database(metadata={"kernel": "6.1.0", "submitter": "ci"})
        db.add(_result())
        path = tmp_path / "meta.json"
        db.save(path)
        loaded = Database.load(path)
        assert loaded.metadata == {"kernel": "6.1.0", "submitter": "ci"}

    def test_merge_combines_metadata(self):
        a = Database(metadata={"kernel": "6.1.0"})
        b = Database(metadata={"submitter": "lab"})
        b.add(_result())
        a.merge(b)
        assert a.metadata == {"kernel": "6.1.0", "submitter": "lab"}

    def test_default_empty(self):
        assert Database().metadata == {}


class TestRecordKey:
    def test_string_roundtrip(self):
        key = RecordKey("redis", "6.2", "bench", "sim:redis-6.2")
        assert RecordKey.from_string(key.as_string()) == key

    def test_malformed_string(self):
        with pytest.raises(DatabaseError):
            RecordKey.from_string("only|three|parts")
