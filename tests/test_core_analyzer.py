"""Tests for the Loupe analysis algorithm on crafted programs.

These programs are built specifically to exercise one analyzer behavior
each: emergent stub/fake decisions, fallback-interaction conflicts and
their automated bisection, metric guarding, replica conservatism, and
the run-time model.
"""

import pytest

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import (
    abort,
    as_failure,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
)
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig, estimated_runtime_s
from repro.core.workload import benchmark, health_check, test_suite
from repro.errors import AnalysisError


def _program(ops, name="crafted", features=frozenset({"core"}), profiles=None):
    return SimProgram(
        name=name,
        version="1",
        ops=tuple(ops),
        features=features,
        profiles=profiles or {"*": WorkloadProfile(metric=1000.0)},
    )


def _op(syscall, **kwargs):
    kwargs.setdefault("on_stub", ignore())
    kwargs.setdefault("on_fake", harmless())
    return SyscallOp(syscall=syscall, **kwargs)


class TestBasicDecisions:
    def test_verdicts_emerge_from_semantics(self):
        program = _program(
            [
                _op("read", on_stub=abort(), on_fake=breaks_core()),   # required
                _op("close", on_stub=ignore(), on_fake=harmless()),    # any
                _op("uname", on_stub=ignore(), on_fake=breaks_core()), # stub-only
                _op("prctl", on_stub=abort(), on_fake=harmless()),     # fake-only
            ]
        )
        result = Analyzer().analyze(SimBackend(program), health_check("health"))
        assert result.required_syscalls() == {"read"}
        assert result.features["close"].verdict.avoidable
        assert result.features["uname"].decision.can_stub
        assert not result.features["uname"].decision.can_fake
        assert not result.features["prctl"].decision.can_stub
        assert result.features["prctl"].decision.can_fake
        assert result.final_run_ok

    def test_as_failure_fake_follows_stub_path(self):
        """AS_FAILURE models callers that validate results (brk)."""
        program = _program(
            [_op("brk", on_stub=ignore(), on_fake=as_failure())]
        )
        result = Analyzer().analyze(SimBackend(program), health_check("health"))
        # Stub is survivable, and the detected fake takes the same path.
        decision = result.features["brk"].decision
        assert decision.can_stub
        assert decision.can_fake

    def test_fallback_makes_syscall_avoidable(self):
        """The brk->mmap pattern from Section 5.2."""
        mmap_op = _op("mmap", on_stub=abort(), on_fake=breaks_core())
        program = _program(
            [
                _op("brk", on_stub=fallback(mmap_op), on_fake=as_failure()),
                mmap_op,
            ]
        )
        result = Analyzer().analyze(SimBackend(program), health_check("health"))
        assert result.features["brk"].decision.can_stub
        assert result.required_syscalls() == {"mmap"}

    def test_workload_gated_ops_invisible(self):
        program = _program(
            [
                _op("read", on_stub=abort(), on_fake=breaks_core()),
                _op(
                    "fsync",
                    feature="journal",
                    when=frozenset({"journal"}),
                    on_stub=disable("journal"),
                    on_fake=breaks("journal"),
                ),
            ],
            features=frozenset({"core", "journal"}),
        )
        backend = SimBackend(program)
        bench_result = Analyzer().analyze(backend, health_check("health"))
        assert "fsync" not in bench_result.traced_syscalls()
        suite_result = Analyzer().analyze(
            backend, test_suite("suite", features=("core", "journal"))
        )
        assert "fsync" in suite_result.required_syscalls()

    def test_feature_breakage_only_caught_when_exercised(self):
        """The pipe2/persistence pattern: benchmarks miss silent breakage."""
        program = _program(
            [
                _op(
                    "pipe2",
                    feature="persistence",
                    on_stub=disable("persistence"),
                    on_fake=breaks("persistence"),
                )
            ],
            features=frozenset({"core", "persistence"}),
        )
        backend = SimBackend(program)
        bench = Analyzer().analyze(backend, health_check("health"))
        assert bench.features["pipe2"].decision.avoidable
        suite = Analyzer().analyze(
            backend, test_suite("suite", features=("core", "persistence"))
        )
        assert suite.features["pipe2"].decision.required


class _AlwaysFailingBackend:
    """A backend whose application never passes its workload."""

    name = "sim:broken"

    def run(self, workload, policy, *, replica=0):
        from collections import Counter

        from repro.core.runner import RunResult

        return RunResult(
            success=False,
            traced=Counter({"read": 1}),
            failure_reason="synthetic failure",
            exit_code=1,
        )


class TestFailureHandling:
    def test_app_failing_baseline_raises(self):
        with pytest.raises(AnalysisError):
            Analyzer().analyze(_AlwaysFailingBackend(), health_check("health"))


class TestConflictBisection:
    def _conflicting_program(self):
        """Two individually-stubbable syscalls whose stubs conflict.

        ``mremap`` falls back to ``mmap2``-style re-allocation through
        ``mremap``'s fallback op; stubbing the fallback too aborts. Each
        alone is survivable, both together are not — the final combined
        run must catch it (Section 3.1's confirmation run).
        """
        inner = _op("mmap", on_stub=abort(), on_fake=breaks_core())
        return _program(
            [
                _op("mremap", on_stub=fallback(inner), on_fake=harmless()),
                _op("mmap", on_stub=fallback(
                    _op("mremap", on_stub=abort(), on_fake=breaks_core())
                ), on_fake=breaks_core()),
                _op("close", on_stub=ignore(), on_fake=harmless()),
            ]
        )

    def test_combined_conflict_detected_and_demoted(self):
        result = Analyzer().analyze(
            SimBackend(self._conflicting_program()), health_check("health")
        )
        # The analysis must end in a coherent state: final run green.
        assert result.final_run_ok
        assert result.conflicts, "bisection should report a conflict group"
        conflict = set().union(*result.conflicts)
        assert conflict <= {"mremap", "mmap", "close"}
        assert "close" not in conflict, "bisection should minimize"
        demoted = [
            f for f in conflict if result.features[f].decision.required
        ]
        assert demoted, "conflicting features must be demoted to required"

    def test_bisection_disabled(self):
        config = AnalyzerConfig(bisect_conflicts=False)
        result = Analyzer(config).analyze(
            SimBackend(self._conflicting_program()), health_check("health")
        )
        assert not result.final_run_ok


class TestMetricGuarding:
    def _shifting_program(self):
        return _program(
            [
                _op(
                    "rt_sigsuspend",
                    on_stub=ignore(perf_factor=0.62),
                    on_fake=harmless(perf_factor=0.62),
                ),
                _op("close", on_stub=ignore(fd_frac=7.0), on_fake=harmless()),
            ],
            profiles={
                "*": WorkloadProfile(metric=1000.0, fd_peak=50, mem_peak_kb=4096)
            },
        )

    def test_impacts_recorded_but_not_disqualifying(self):
        result = Analyzer().analyze(
            SimBackend(self._shifting_program()),
            benchmark("bench", metric_name="req/s"),
        )
        report = result.features["rt_sigsuspend"]
        assert report.decision.can_stub  # still passes the test script
        assert report.stub_impact is not None
        assert report.stub_impact.perf.significant
        assert report.stub_impact.perf.delta == pytest.approx(-0.38, abs=0.02)
        assert any("shifts metrics" in note for note in report.notes)
        fd_report = result.features["close"]
        assert fd_report.stub_impact.fd.significant

    def test_strict_metrics_disqualify(self):
        config = AnalyzerConfig(strict_metrics=True)
        result = Analyzer(config).analyze(
            SimBackend(self._shifting_program()),
            benchmark("bench", metric_name="req/s"),
        )
        assert not result.features["rt_sigsuspend"].decision.can_stub


class TestReplicaConservatism:
    def test_replicas_recorded(self):
        program = _program([_op("read", on_stub=abort(), on_fake=breaks_core())])
        config = AnalyzerConfig(replicas=5)
        result = Analyzer(config).analyze(
            SimBackend(program), health_check("health")
        )
        assert result.replicas == 5
        assert result.baseline.metric.n == 0 or result.baseline.metric.n == 5


class TestRuntimeModel:
    def test_paper_formula(self):
        """(2 + 2·t·s)·ceil(r/p) with t folded into time units."""
        # 10s workload, 20 syscalls, 3 replicas, serial.
        assert estimated_runtime_s(10, 20, replicas=3, parallel=1) == pytest.approx(
            (2 * 10 + 2 * 10 * 20) * 3
        )

    def test_parallel_replicas_divide(self):
        serial = estimated_runtime_s(10, 20, replicas=3, parallel=1)
        parallel = estimated_runtime_s(10, 20, replicas=3, parallel=3)
        assert parallel == pytest.approx(serial / 3)

    def test_partial_pool_rounds_up(self):
        # ceil(3/2) = 2 waves: a half-empty second wave still costs a wave.
        assert estimated_runtime_s(10, 20, replicas=3, parallel=2) == (
            pytest.approx((2 * 10 + 2 * 10 * 20) * 2)
        )

    def test_excess_parallelism_caps_at_one_wave(self):
        assert estimated_runtime_s(10, 20, replicas=3, parallel=64) == (
            pytest.approx(2 * 10 + 2 * 10 * 20)
        )

    def test_defaults_are_three_serial_replicas(self):
        assert estimated_runtime_s(1.0, 5) == pytest.approx((2 + 2 * 5) * 3)

    def test_nonpositive_parallel_treated_as_serial(self):
        assert estimated_runtime_s(10, 20, replicas=3, parallel=0) == (
            estimated_runtime_s(10, 20, replicas=3, parallel=1)
        )

    def test_zero_features_cost_discovery_and_confirmation_only(self):
        assert estimated_runtime_s(7.0, 0, replicas=1) == pytest.approx(14.0)


class TestConfigValidation:
    def test_bad_replicas(self):
        with pytest.raises(ValueError):
            AnalyzerConfig(replicas=0)

    def test_bad_demotion_rounds(self):
        with pytest.raises(ValueError):
            AnalyzerConfig(max_demotion_rounds=0)


class TestProgressReporting:
    def test_progress_narrates_all_stages(self):
        program = _program(
            [
                _op("read", on_stub=abort(), on_fake=breaks_core()),
                _op("close", on_stub=ignore(), on_fake=harmless()),
            ]
        )
        lines = []
        Analyzer().analyze(
            SimBackend(program), health_check("health"),
            progress=lines.append,
        )
        text = "\n".join(lines)
        assert "baseline" in text
        assert "feature(s) to probe" in text
        assert "probe read" in text
        assert "final combined run ok" in text
        assert "analysis finished" in text
