"""Tests for the static analysis substrates (binary scanner, source
scanner, modeled views)."""

import pytest

from repro.errors import StaticAnalysisError
from repro.staticx.binary import scan_binary, scan_bytes
from repro.staticx.model import analyze_app, overestimation_factor
from repro.staticx.source import scan_source_text, scan_source_tree
from repro.syscalls import number_of


class TestByteScanner:
    def test_mov_eax_imm(self):
        # mov eax, 39 (getpid); syscall
        code = b"\xb8\x27\x00\x00\x00\x0f\x05"
        counts, sites, unresolved = scan_bytes(code)
        assert counts == {39: 1}
        assert sites == 1
        assert unresolved == 0

    def test_xor_eax(self):
        # xor eax, eax (read = 0); syscall
        code = b"\x31\xc0\x0f\x05"
        counts, _, _ = scan_bytes(code)
        assert counts == {0: 1}

    def test_mov_rax_imm(self):
        # mov rax, 60 (exit); syscall
        code = b"\x48\xc7\xc0\x3c\x00\x00\x00\x0f\x05"
        counts, _, _ = scan_bytes(code)
        assert counts == {60: 1}

    def test_register_number_unresolved(self):
        # mov eax from memory is invisible to the linear sweep.
        code = b"\x8b\x45\xf8\x0f\x05"
        counts, sites, unresolved = scan_bytes(code)
        assert not counts
        assert sites == 1
        assert unresolved == 1

    def test_closest_assignment_wins(self):
        # mov eax, 1; mov eax, 2; syscall -> number 2 (write)
        code = b"\xb8\x01\x00\x00\x00\xb8\x02\x00\x00\x00\x0f\x05"
        counts, _, _ = scan_bytes(code)
        assert counts == {2: 1}

    def test_bogus_number_counts_unresolved(self):
        code = b"\xb8\xff\xff\x00\x00\x0f\x05"  # 65535: not a syscall
        counts, sites, unresolved = scan_bytes(code)
        assert not counts
        assert unresolved == 1

    def test_multiple_sites(self):
        one = b"\xb8\x27\x00\x00\x00\x0f\x05"
        code = one * 3
        counts, sites, _ = scan_bytes(code)
        assert sites == 3
        assert counts[39] == 3

    def test_empty(self):
        assert scan_bytes(b"") == ({}, 0, 0)


class TestBinaryScan:
    def test_compiled_probe(self, compiled_syscall_binary):
        report = scan_binary(compiled_syscall_binary)
        assert {"getpid", "getuid", "sync"} <= report.syscalls
        assert report.resolution_rate > 0.9
        assert number_of("getpid") in report.numbers

    def test_non_elf_raises(self, tmp_path):
        from repro.errors import ElfFormatError

        path = tmp_path / "script.sh"
        path.write_text("#!/bin/sh\n")
        with pytest.raises(ElfFormatError):
            scan_binary(path)


class TestSourceScanner:
    def test_wrapper_calls_found(self):
        source = """
        int main(void) {
            int fd = open("/tmp/x", 0);
            read(fd, buf, 10);
            close(fd);
            return 0;
        }
        """
        report = scan_source_text(source)
        assert {"openat", "read", "close"} <= report.syscalls

    def test_raw_syscall_invocations(self):
        source = "void f(void) { syscall(SYS_gettid); syscall(__NR_futex, 0); }"
        report = scan_source_text(source)
        assert {"gettid", "futex"} <= report.syscalls

    def test_comments_and_strings_ignored(self):
        source = '''
        /* read(fd, buf, n) would be nice */
        // write(fd, buf, n)
        const char *s = "open(path)";
        int main(void) { return 0; }
        '''
        report = scan_source_text(source)
        assert not report.syscalls

    def test_aliases_resolved(self):
        report = scan_source_text("int main(){ printf(\"hi\"); exit(0); }")
        assert "write" in report.syscalls
        assert "exit_group" in report.syscalls

    def test_dead_code_counts(self):
        """The defining conservatism: unreachable calls still count."""
        source = """
        int main(void) { return 0; }
        static void never_called(void) { unlink("/tmp/x"); }
        """
        report = scan_source_text(source)
        assert "unlink" in report.syscalls

    def test_tree_scan(self, tmp_path):
        (tmp_path / "a.c").write_text("int main(){ read(0,0,0); }")
        (tmp_path / "b.c").write_text("void f(){ write(1,0,0); }")
        (tmp_path / "note.txt").write_text("open() is ignored here")
        report = scan_source_tree(tmp_path)
        assert report.syscalls == {"read", "write"}


class TestModeledViews:
    def test_views_and_factor(self, cloud_app_set):
        redis = next(a for a in cloud_app_set if a.name == "redis")
        binary = analyze_app(redis, "binary")
        source = analyze_app(redis, "source")
        assert binary.count == 103
        assert source.count == 85
        assert source.syscalls <= binary.syscalls
        factor = overestimation_factor(binary, frozenset(["a"] * 1) | {"b"})
        assert factor == binary.count / 2

    def test_unknown_level(self, cloud_app_set):
        with pytest.raises(ValueError):
            analyze_app(cloud_app_set[0], "quantum")


class TestZeroDenominators:
    """Empty inputs must report 0.0, never raise ZeroDivisionError."""

    def test_resolution_rate_of_empty_scan(self):
        from repro.staticx.binary import BinaryScanReport

        report = BinaryScanReport(
            path="empty.elf",
            syscalls=frozenset(),
            numbers=frozenset(),
            sites=0,
            unresolved_sites=0,
        )
        assert report.resolution_rate == 0.0

    def test_resolution_rate_with_sites(self):
        from repro.staticx.binary import BinaryScanReport

        report = BinaryScanReport(
            path="some.elf",
            syscalls=frozenset({"read"}),
            numbers=frozenset({0}),
            sites=4,
            unresolved_sites=1,
        )
        assert report.resolution_rate == 0.75

    def test_overestimation_factor_of_empty_required_set(self, cloud_app_set):
        report = analyze_app(cloud_app_set[0], "binary")
        assert overestimation_factor(report, frozenset()) == 0.0
