"""The fabric wire codec: framing, handshake, payloads.

The property under test is the one the ISSUE's satellite names: a
reader fed garbage — truncated frames, oversized length prefixes,
unknown kinds, version-mismatched handshakes — must raise a typed
:class:`FabricProtocolError` (or report clean EOF as ``None``), and
must *never* hang or return corrupt data. Everything runs over
``io.BytesIO``, so a would-be hang shows up as a read past the end of
the buffer (``None``/exception), not an actual block.
"""

from __future__ import annotations

import io
import pickle
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.runner import BackendCapabilities
from repro.fabric.protocol import (
    FRAME_KINDS,
    KIND_ACK,
    KIND_CHUNK,
    KIND_ERROR,
    KIND_HEARTBEAT,
    KIND_HELLO,
    KIND_RESULT,
    KIND_WELCOME,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FabricProtocolError,
    decode_ack,
    decode_chunk,
    decode_error,
    decode_hello,
    decode_welcome,
    encode_ack,
    encode_chunk,
    encode_error,
    encode_frame,
    encode_result,
    hello_payload,
    read_frame,
    welcome_payload,
)

CAPS = BackendCapabilities(
    deterministic=True, parallel_safe=True, process_safe=True
)


# -- round trips -------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(
    kind=st.sampled_from(sorted(FRAME_KINDS)),
    payload=st.binary(max_size=4096),
)
def test_any_frame_round_trips(kind: int, payload: bytes) -> None:
    stream = io.BytesIO(encode_frame(kind, payload))
    assert read_frame(stream) == (kind, payload)
    # The stream is left exactly at the frame boundary.
    assert read_frame(stream) is None


@settings(max_examples=50, deadline=None)
@given(payloads=st.lists(st.binary(max_size=512), max_size=8))
def test_back_to_back_frames_stay_in_sync(payloads: list) -> None:
    blob = b"".join(
        encode_frame(KIND_RESULT, payload) for payload in payloads
    )
    stream = io.BytesIO(blob)
    for payload in payloads:
        assert read_frame(stream) == (KIND_RESULT, payload)
    assert read_frame(stream) is None


def test_chunk_payload_round_trips() -> None:
    job = ("backend", "workload", [(0, 1, None)], True, None)
    chunk_id, decoded = decode_chunk(encode_chunk(7, job))
    assert chunk_id == 7
    assert decoded == job


@settings(max_examples=50, deadline=None)
@given(chunk_id=st.integers(min_value=0, max_value=2**31 - 1))
def test_ack_round_trips(chunk_id: int) -> None:
    assert decode_ack(encode_ack(chunk_id)) == chunk_id


def test_error_payload_round_trips_exceptions() -> None:
    chunk_id, error = decode_error(encode_error(3, ValueError("boom")))
    assert chunk_id == 3
    assert isinstance(error, ValueError)
    assert "boom" in str(error)


def test_error_payload_degrades_unpicklable_exceptions() -> None:
    class Unpicklable(RuntimeError):
        def __reduce__(self):
            raise TypeError("nope")

    chunk_id, error = decode_error(encode_error(9, Unpicklable("gone")))
    assert chunk_id == 9
    assert isinstance(error, FabricProtocolError)
    assert "gone" in str(error)


def test_error_payload_refuses_non_exceptions() -> None:
    with pytest.raises(FabricProtocolError):
        decode_error(pickle.dumps((1, "not an exception")))


# -- the adversarial properties ---------------------------------------------


@settings(max_examples=150, deadline=None)
@given(payload=st.binary(min_size=1, max_size=2048), cut=st.data())
def test_truncated_frame_raises_not_hangs(payload: bytes, cut) -> None:
    frame = encode_frame(KIND_RESULT, payload)
    keep = cut.draw(st.integers(min_value=1, max_value=len(frame) - 1))
    stream = io.BytesIO(frame[:keep])
    with pytest.raises(FabricProtocolError):
        read_frame(stream)


def test_clean_eof_is_none_not_an_error() -> None:
    assert read_frame(io.BytesIO(b"")) is None


@settings(max_examples=100, deadline=None)
@given(garbage=st.binary(min_size=1, max_size=64))
def test_arbitrary_garbage_never_returns_corrupt_frames(
    garbage: bytes,
) -> None:
    """Any byte soup either parses as real frames, ends cleanly, or
    raises the typed error — read_frame has no fourth outcome."""
    stream = io.BytesIO(garbage)
    try:
        while True:
            frame = read_frame(stream)
            if frame is None:
                break
            kind, payload = frame
            assert kind in FRAME_KINDS
            assert len(payload) <= MAX_FRAME_BYTES
    except FabricProtocolError:
        pass


def test_unknown_kind_is_refused() -> None:
    frame = struct.pack(">BI", 99, 0)
    with pytest.raises(FabricProtocolError, match="unknown frame kind"):
        read_frame(io.BytesIO(frame))


def test_oversized_frame_is_refused_before_reading_payload() -> None:
    header = struct.pack(">BI", KIND_RESULT, MAX_FRAME_BYTES + 1)
    stream = io.BytesIO(header)  # deliberately no payload bytes at all
    with pytest.raises(FabricProtocolError, match="over the"):
        read_frame(stream)
    # The refusal happened at the header: nothing past it was consumed.
    assert stream.tell() == len(header)


def test_heartbeat_frames_are_legal_and_empty() -> None:
    stream = io.BytesIO(encode_frame(KIND_HEARTBEAT, b""))
    assert read_frame(stream) == (KIND_HEARTBEAT, b"")


# -- handshake ---------------------------------------------------------------


def test_handshake_round_trips() -> None:
    assert decode_hello(hello_payload())["version"] == PROTOCOL_VERSION
    welcome = decode_welcome(
        welcome_payload(CAPS, pid=123, worker_id="w-1")
    )
    assert welcome["pid"] == 123
    assert welcome["worker_id"] == "w-1"
    assert welcome["capabilities"].process_safe is True


@settings(max_examples=30, deadline=None)
@given(version=st.integers(min_value=-5, max_value=50))
def test_version_mismatch_is_typed(version: int) -> None:
    import json

    payload = json.dumps(
        {"magic": "loupe-fabric", "version": version}
    ).encode("utf-8")
    if version == PROTOCOL_VERSION:
        assert decode_hello(payload)["version"] == version
        return
    with pytest.raises(FabricProtocolError, match="version mismatch"):
        decode_hello(payload)


def test_wrong_magic_is_typed() -> None:
    import json

    payload = json.dumps(
        {"magic": "not-loupe", "version": PROTOCOL_VERSION}
    ).encode("utf-8")
    with pytest.raises(FabricProtocolError, match="magic"):
        decode_hello(payload)


@settings(max_examples=60, deadline=None)
@given(garbage=st.binary(max_size=128))
def test_garbage_handshake_is_typed(garbage: bytes) -> None:
    for decode in (decode_hello, decode_welcome):
        try:
            decode(garbage)
        except FabricProtocolError:
            continue
        # Only a byte-exact valid handshake may decode.
        document = __import__("json").loads(garbage)
        assert document["magic"] == "loupe-fabric"
