"""Tests for the typed analysis event stream and its legacy adapter."""

import json

import pytest

from repro.api.events import (
    AnalysisEvent,
    AnalysisFinished,
    AnalysisStarted,
    BaselineStarted,
    CombinedRunFinished,
    ConflictBisected,
    EngineStatsEvent,
    FeatureProbed,
    FeaturesEnumerated,
    combine_callbacks,
    legacy_adapter,
    render_legacy,
)
from repro.appsim.backend import SimBackend
from repro.appsim.behavior import (
    abort,
    breaks_core,
    fallback,
    harmless,
    ignore,
)
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.engine import EngineStats
from repro.core.workload import health_check


def _program(ops, name="crafted"):
    return SimProgram(
        name=name,
        version="1",
        ops=tuple(ops),
        profiles={"*": WorkloadProfile(metric=1000.0)},
    )


def _op(syscall, **kwargs):
    kwargs.setdefault("on_stub", ignore())
    kwargs.setdefault("on_fake", harmless())
    return SyscallOp(syscall=syscall, **kwargs)


def _analyze_collecting(program, **config_kwargs):
    lines, events = [], []
    result = Analyzer(AnalyzerConfig(**config_kwargs) if config_kwargs else None).analyze(
        SimBackend(program), health_check("health"),
        progress=lines.append, on_event=events.append,
    )
    return result, lines, events


class TestEventStream:
    def test_event_ordering(self):
        _, _, events = _analyze_collecting(
            _program([_op("read"), _op("close")])
        )
        kinds = [event.kind for event in events]
        assert kinds[0] == "analysis_started"
        assert kinds[1] == "baseline_started"
        assert kinds[2] == "features_enumerated"
        assert kinds.count("feature_probed") == 2
        assert kinds[-3] == "combined_run_finished"
        assert kinds[-2] == "engine_stats"
        assert kinds[-1] == "analysis_finished"
        # probes strictly between enumeration and the combined run
        assert kinds[3:5] == ["feature_probed", "feature_probed"]

    def test_events_carry_structured_payloads(self):
        result, _, events = _analyze_collecting(
            _program([_op("read"), _op("close")])
        )
        started = events[0]
        assert isinstance(started, AnalysisStarted)
        assert started.app == result.app
        assert started.workload == "health"
        assert started.backend == result.backend
        enumerated = events[2]
        assert isinstance(enumerated, FeaturesEnumerated)
        assert enumerated.count == len(enumerated.features)
        assert set(enumerated.features) == set(result.features)
        probed = {e.feature: e for e in events if isinstance(e, FeatureProbed)}
        for name, report in result.features.items():
            assert probed[name].can_stub == report.decision.can_stub
            assert probed[name].can_fake == report.decision.can_fake

    def test_every_event_carries_the_app_identity(self):
        # Attribution under analyze_many(jobs>1): concurrent analyses
        # interleave on one callback, so each event must name its app.
        result, _, events = _analyze_collecting(
            _program([_op("read"), _op("close")])
        )
        assert all(event.app == result.app for event in events)

    def test_conflict_bisected_event(self):
        # mremap falls back to mmap: each alone is avoidable, together
        # they conflict — the bisection event must name the culprits.
        inner = SyscallOp(syscall="mmap", on_stub=abort(), on_fake=breaks_core())
        program = _program(
            [
                SyscallOp(syscall="mremap", on_stub=fallback(inner),
                          on_fake=harmless()),
                SyscallOp(
                    syscall="mmap",
                    on_stub=fallback(
                        SyscallOp(syscall="mremap", on_stub=abort(),
                                  on_fake=breaks_core())
                    ),
                    on_fake=breaks_core(),
                ),
                _op("close"),
            ],
            name="conflicting",
        )
        result, lines, events = _analyze_collecting(program)
        bisections = [e for e in events if isinstance(e, ConflictBisected)]
        assert bisections, "expected at least one bisection event"
        assert all(e.conflict for e in bisections)
        assert {f for e in bisections for f in e.conflict} <= set(result.features)
        failed = [
            e for e in events
            if isinstance(e, CombinedRunFinished) and not e.ok
        ]
        assert failed and failed[0].round == 1
        assert any("bisecting" in line for line in lines)

    def test_json_round_trip(self):
        _, _, events = _analyze_collecting(_program([_op("read")]))
        for event in events:
            payload = json.loads(json.dumps(event.to_dict()))
            assert payload["event"] == event.kind
            assert "kind" not in payload  # ClassVar must not leak

    def test_untagged_backend_omitted_from_json(self):
        """Single-target campaigns never stamp a backend tag, and the
        empty tag must not leak into their JSON stream (which stays
        byte-identical to the pre-fan-out format)."""
        _, _, events = _analyze_collecting(_program([_op("read")]))
        for event in events:
            payload = event.to_dict()
            if isinstance(event, AnalysisStarted):
                # AnalysisStarted's backend is the execution identity,
                # present since the event stream was born.
                assert payload["backend"].startswith("sim:")
            else:
                assert "backend" not in payload

    def test_tag_backend_stamps_every_leg_event(self):
        """Within a fan-out leg the registry name wins everywhere —
        including AnalysisStarted, whose execution identity could
        collide across registry variants and leave concurrent legs
        unattributable."""
        from repro.api.events import tag_backend

        seen = []
        emit = tag_backend(seen.append, "appsim-b")
        emit(BaselineStarted(replicas=2))
        emit(AnalysisStarted(app="a", workload="w", backend="sim:a-1",
                             replicas=3))
        assert seen[0].backend == "appsim-b"
        assert seen[0].to_dict()["backend"] == "appsim-b"
        assert seen[1].backend == "appsim-b"


class TestLegacyAdapter:
    def test_rendered_events_match_progress_strings(self):
        _, lines, events = _analyze_collecting(
            _program([_op("read"), _op("uname", on_fake=breaks_core())])
        )
        assert render_legacy(events) == lines

    def test_exact_legacy_strings(self):
        _, lines, _ = _analyze_collecting(_program([_op("close")]))
        assert lines[0] == "baseline: 3 passthrough replica(s)"
        assert lines[1] == "tracing found 1 feature(s) to probe"
        assert lines[2] == "probe close: stub=ok fake=ok"
        assert lines[3] == "final combined run ok (1 features avoided)"
        assert lines[4].startswith("engine: ")
        assert lines[5].startswith("analysis finished in ")

    def test_vacuous_combined_run_renders_nothing(self):
        event = CombinedRunFinished(ok=True, avoided=0, round=1)
        assert event.legacy_line() is None
        _, lines, _ = _analyze_collecting(
            _program([_op("read", on_stub=abort(), on_fake=breaks_core())])
        )
        assert not any("final combined run" in line for line in lines)

    def test_silent_events_have_no_legacy_line(self):
        assert AnalysisStarted(
            app="a", workload="w", backend="b", replicas=3
        ).legacy_line() is None
        assert ConflictBisected(round=1, conflict=("mmap",)).legacy_line() is None

    def test_engine_stats_event_renders_describe(self):
        stats = EngineStats(
            runs_requested=10, runs_executed=7,
            cache_hits=3, replicas_skipped=2,
        )
        event = EngineStatsEvent.from_stats(stats)
        assert event.stats() == stats
        assert event.legacy_line() == f"engine: {stats.describe()}"

    def test_engine_stats_event_carries_executor_and_persistence(self):
        stats = EngineStats(
            runs_requested=4, runs_executed=1, cache_hits=3,
            replicas_skipped=0, persistent_hits=2,
        )
        event = EngineStatsEvent.from_stats(stats, executor="process")
        assert event.stats() == stats
        document = event.to_dict()
        assert document["executor"] == "process"
        assert document["persistent_hits"] == 2
        assert "2 from the persistent cache" in event.legacy_line()

    def test_serial_probing_streams_feature_events(self):
        """At parallel=1 each FeatureProbed must fire before the next
        feature's probes run — the historical streaming behavior, not
        one burst after the whole probe phase."""
        program = _program([_op("close"), _op("uname"), _op("prctl")])
        backend = SimBackend(program)
        timeline = []
        original_run = backend.run

        def tracing_run(workload, policy, *, replica=0):
            altered = sorted(policy.altered_features())
            timeline.append(("run", altered[0] if altered else "baseline"))
            return original_run(workload, policy, replica=replica)

        backend.run = tracing_run
        Analyzer().analyze(
            backend, health_check("health"),
            on_event=lambda event: timeline.append(("event", event)),
        )
        probed_positions = {
            event.feature: index
            for index, (kind, event) in enumerate(timeline)
            if kind == "event" and isinstance(event, FeatureProbed)
        }
        def first_run(feature):
            return min(
                index for index, (kind, what) in enumerate(timeline)
                if kind == "run" and what == feature
            )

        # Features probe in sorted order (close, prctl, uname): each
        # verdict was announced before the next feature's probes
        # started executing.
        assert probed_positions["close"] < first_run("prctl")
        assert probed_positions["prctl"] < first_run("uname")

    def test_analysis_reports_resolved_executor(self):
        _, _, events = _analyze_collecting(
            _program([_op("close")]), parallel=2, executor="process"
        )
        stats_events = [
            e for e in events if isinstance(e, EngineStatsEvent)
        ]
        assert len(stats_events) == 1
        assert stats_events[0].executor == "process"

    def test_duration_formatting_matches_legacy(self):
        assert AnalysisFinished(duration_s=1.2345).legacy_line() == (
            "analysis finished in 1.23s"
        )

    def test_adapter_drops_silent_events(self):
        seen = []
        emit = legacy_adapter(seen.append)
        emit(AnalysisStarted(app="a", workload="w", backend="b", replicas=3))
        emit(BaselineStarted(replicas=2))
        assert seen == ["baseline: 2 passthrough replica(s)"]


class TestCombineCallbacks:
    def test_none_when_empty(self):
        assert combine_callbacks() is None
        assert combine_callbacks(None, None) is None

    def test_single_callback_passthrough(self):
        marker = lambda event: None
        assert combine_callbacks(None, marker, None) is marker

    def test_fan_out(self):
        first, second = [], []
        emit = combine_callbacks(first.append, None, second.append)
        event = BaselineStarted(replicas=1)
        emit(event)
        assert first == [event]
        assert second == [event]


class TestEnvelope:
    """The campaign server's versioned event envelope."""

    def test_envelope_prefixes_schema_version(self):
        from repro.api.events import SCHEMA_VERSION, envelope

        event = AnalysisStarted(app="a", workload="w", backend="b", replicas=3)
        document = envelope(event)
        assert document["schema_version"] == SCHEMA_VERSION == 1
        assert list(document)[0] == "schema_version"

    def test_stripping_the_envelope_restores_the_legacy_bytes(self):
        from repro.api.events import envelope

        event = FeatureProbed(
            feature="close", can_stub=False, can_fake=False,
            traced_count=2, app="a",
        )
        legacy_line = json.dumps(event.to_dict())
        wrapped = json.loads(json.dumps(envelope(event)))
        wrapped.pop("schema_version")
        assert json.dumps(wrapped) == legacy_line

    def test_schema_version_override(self):
        from repro.api.events import envelope

        document = envelope(BaselineStarted(replicas=1), schema_version=7)
        assert document["schema_version"] == 7

    def test_legacy_stream_has_no_schema_version(self):
        """--events jsonl consumers must keep seeing the exact
        pre-envelope event documents."""
        _, _, events = _analyze_collecting(_program([_op("close")]))
        for event in events:
            assert "schema_version" not in event.to_dict()

    def test_cancelled_event_shape(self):
        from repro.api.events import AnalysisCancelled

        event = AnalysisCancelled(duration_s=1.5, reason="signal", app="x")
        document = event.to_dict()
        assert document["event"] == "analysis_cancelled"
        assert document["reason"] == "signal"
        assert event.legacy_line() == "analysis cancelled after 1.50s"
