"""End-to-end tests: the Loupe analyzer on real Linux binaries."""

import sys

import pytest

from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.policy import passthrough
from repro.core.workload import CommandWorkload, WorkloadKind
from repro.errors import BackendError
from repro.ptracer.backend import PtraceBackend, _parse_metric

pytestmark = pytest.mark.ptrace


def _workload(argv, **kwargs):
    return CommandWorkload(
        name="cmd", kind=WorkloadKind.HEALTH_CHECK, argv=tuple(argv),
        timeout_s=30.0, **kwargs,
    )


class TestBackend:
    def test_run_true(self):
        backend = PtraceBackend()
        result = backend.run(_workload(["/bin/true"]), passthrough())
        assert result.success
        assert result.traced

    def test_run_false_fails(self):
        backend = PtraceBackend()
        result = backend.run(_workload(["/bin/false"]), passthrough())
        assert not result.success
        assert "exit code 1" in result.failure_reason

    def test_expected_exit_code(self):
        backend = PtraceBackend()
        result = backend.run(
            _workload(["/bin/false"], expect_exit_code=1), passthrough()
        )
        assert result.success

    def test_test_script_decides(self):
        backend = PtraceBackend()
        workload = _workload(
            ["/bin/true"], test_argv=("/bin/sh", "-c", "echo 42.5")
        )
        result = backend.run(workload, passthrough())
        assert result.success
        assert result.metric == 42.5

    def test_failing_test_script(self):
        backend = PtraceBackend()
        workload = _workload(["/bin/true"], test_argv=("/bin/false",))
        result = backend.run(workload, passthrough())
        assert not result.success

    def test_rejects_sim_workload(self):
        from repro.core.workload import health_check

        backend = PtraceBackend()
        with pytest.raises(BackendError):
            backend.run(health_check("health"), passthrough())


class TestMetricParsing:
    def test_parse_last_number(self):
        assert _parse_metric("starting\n123.5\n") == 123.5

    def test_parse_non_number(self):
        assert _parse_metric("all done\n") is None

    def test_parse_empty(self):
        assert _parse_metric("") is None


@pytest.mark.slow
class TestFullAnalysisOnRealBinary:
    def test_analyze_echo(self):
        """A complete Loupe analysis of /bin/echo: the mini version of
        the paper's per-app studies, on a live binary."""
        backend = PtraceBackend()
        workload = CommandWorkload(
            name="echo-health",
            kind=WorkloadKind.HEALTH_CHECK,
            argv=("/bin/echo", "hello"),
            timeout_s=30.0,
        )
        config = AnalyzerConfig(replicas=1, subfeature_level=False)
        result = Analyzer(config).analyze(backend, workload, app="echo")
        traced = result.traced_syscalls()
        required = result.required_syscalls()
        assert {"execve", "mmap"} <= traced
        assert required <= traced
        # The paper's core claim, live: a real program runs fine with a
        # good chunk of its syscalls stubbed or faked.
        assert len(result.avoidable_syscalls()) >= len(traced) * 0.2
        # The fundamentally required machinery stays required.
        assert "execve" in required or "mmap" in required
