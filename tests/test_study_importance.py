"""Tests for the API-importance study (Figures 3 and 5)."""

import pytest

from repro.study.importance import (
    figure3,
    loupe_importance,
    naive_importance,
    render_figure5_row,
    syscall_sets,
)


class TestFigure3:
    def test_naive_dominates_loupe(self, bench_results):
        """Figure 3: the naive curve lies above Loupe's everywhere."""
        assert figure3(bench_results).dominance_holds()

    def test_totals_match_paper_scale(self, bench_results):
        """Paper: 148 required (Loupe) vs 180 (naive) corpus-wide."""
        fig = figure3(bench_results)
        assert 170 <= fig.naive.total_syscalls() <= 205
        assert 125 <= fig.loupe.total_syscalls() <= 160
        assert fig.loupe.total_syscalls() < fig.naive.total_syscalls()

    def test_pointwise_importance_relation(self, bench_results):
        """For every syscall: naive importance >= loupe importance."""
        fig = figure3(bench_results)
        for syscall, fraction in fig.loupe.fractions.items():
            assert fig.naive.importance_of(syscall) >= fraction

    def test_importance_curve_sorted(self, bench_results):
        curve = loupe_importance(bench_results).curve()
        assert curve == sorted(curve, reverse=True)
        assert all(0.0 < value <= 1.0 for value in curve)

    def test_top_traced_is_libc_core(self, bench_results):
        top = dict(naive_importance(bench_results).top(10))
        assert "execve" in top
        assert "mmap" in top

    def test_app_count_recorded(self, bench_results):
        assert naive_importance(bench_results).app_count == len(bench_results)


class TestFigure5:
    def test_four_views(self, seven_app_set, seven_bench_results):
        views = syscall_sets(seven_app_set, seven_bench_results)
        assert set(views) == {
            "static-binary", "static-source", "dynamic-traced",
            "dynamic-required",
        }

    def test_view_set_sizes_ordered(self, seven_app_set, seven_bench_results):
        """Figure 5: binary > source > traced > required in coverage."""
        views = syscall_sets(seven_app_set, seven_bench_results)
        binary = views["static-binary"].total_syscalls()
        source = views["static-source"].total_syscalls()
        traced = views["dynamic-traced"].total_syscalls()
        required = views["dynamic-required"].total_syscalls()
        assert binary > source > traced > required

    def test_misaligned_inputs_rejected(self, seven_app_set, seven_bench_results):
        with pytest.raises(ValueError):
            syscall_sets(seven_app_set[:3], seven_bench_results)

    def test_render_row(self, seven_app_set, seven_bench_results):
        views = syscall_sets(seven_app_set, seven_bench_results)
        text = render_figure5_row(views["dynamic-required"])
        assert "[dynamic-required]" in text
        assert "59(" in text  # execve is required across the board
