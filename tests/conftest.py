"""Shared fixtures for the test suite.

Expensive artifacts (the corpus, analyses of the hand-built apps) are
session-scoped: the analyses are deterministic, so sharing them across
tests loses nothing and saves minutes.
"""

from __future__ import annotations

import shutil
import subprocess

import pytest

from repro.appsim.corpus import cloud_apps, corpus, seven_apps
from repro.core.analyzer import Analyzer, AnalyzerConfig


def pytest_collection_modifyitems(config, items):
    from repro.ptracer.ctypes_bindings import ptrace_works

    if ptrace_works():
        return
    skip = pytest.mark.skip(reason="ptrace unavailable in this environment")
    for item in items:
        if "ptrace" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def cloud_app_set():
    """The 15 hand-modeled cloud applications."""
    return cloud_apps()


@pytest.fixture(scope="session")
def seven_app_set():
    """The Figure 4/5 seven-app comparison set."""
    return seven_apps()


@pytest.fixture(scope="session")
def full_corpus():
    """All 116 corpus applications."""
    return corpus()


@pytest.fixture(scope="session")
def analyzer():
    """A default 3-replica analyzer."""
    return Analyzer(AnalyzerConfig(replicas=3))


@pytest.fixture(scope="session")
def bench_results(full_corpus, analyzer):
    """Benchmark-workload analyses of the full corpus (cached)."""
    from repro.study.base import analyze_apps

    return analyze_apps(full_corpus, "bench")


@pytest.fixture(scope="session")
def seven_bench_results(seven_app_set):
    from repro.study.base import analyze_apps

    return analyze_apps(seven_app_set, "bench")


@pytest.fixture(scope="session")
def seven_suite_results(seven_app_set):
    from repro.study.base import analyze_apps

    return analyze_apps(seven_app_set, "suite")


@pytest.fixture(scope="session")
def gcc_available():
    return shutil.which("gcc") is not None


@pytest.fixture(scope="session")
def compiled_syscall_binary(tmp_path_factory, gcc_available):
    """A small -O2 binary with known inline syscalls (or skip)."""
    if not gcc_available:
        pytest.skip("gcc not available")
    source = r"""
    #include <unistd.h>
    #include <sys/syscall.h>
    static inline long my_syscall(long n) {
        long r;
        asm volatile("syscall" : "=a"(r) : "a"(n) : "rcx", "r11", "memory");
        return r;
    }
    int main(void) {
        my_syscall(SYS_getpid);
        my_syscall(SYS_getuid);
        my_syscall(SYS_sync);
        write(1, "ok\n", 3);
        return 0;
    }
    """
    directory = tmp_path_factory.mktemp("bin")
    src = directory / "probe.c"
    out = directory / "probe"
    src.write_text(source)
    subprocess.run(
        ["gcc", "-O2", "-o", str(out), str(src)], check=True, capture_output=True
    )
    return str(out)
