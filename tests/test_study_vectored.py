"""Tests for the corpus-wide vectored-syscall study (Section 5.4)."""

import pytest

from repro.appsim.corpus import seven_apps
from repro.study.vectored_study import render_vectored, vectored_study


@pytest.fixture(scope="module")
def study():
    return vectored_study(seven_apps())


class TestSectionFiveFour:
    def test_arch_prctl_one_of_six(self, study):
        """Universally invoked; exactly ARCH_SET_FS needed."""
        row = study.row("arch_prctl")
        assert row.apps_invoking == 7
        assert row.total_operations == 6
        assert row.operations_used == {"ARCH_SET_FS"}
        assert row.operations_required == {"ARCH_SET_FS"}
        assert row.required_everywhere == {"ARCH_SET_FS"}

    def test_prlimit64_thin_slice(self, study):
        """Of 16 resources, only a few appear and none universally
        requires implementation."""
        row = study.row("prlimit64")
        assert row.total_operations == 16
        assert len(row.operations_used) <= 4
        assert not row.required_everywhere

    def test_fcntl_mixes_required_and_stubbable(self, study):
        row = study.row("fcntl")
        assert "F_SETFL" in row.operations_required
        assert "F_SETFD" in row.operations_used
        assert "F_SETFD" not in row.operations_required

    def test_ioctl_fully_avoidable(self, study):
        """'All of them can be stubbed' — benchmark-level ioctl use."""
        row = study.row("ioctl")
        assert not row.operations_required

    def test_no_vectored_syscall_needs_full_implementation(self, study):
        for row in study.rows:
            assert not row.needs_full_implementation, row.syscall

    def test_render(self, study):
        text = render_vectored(study)
        assert "arch_prctl" in text
        assert "F_SETFL" in text

    def test_unknown_row(self, study):
        with pytest.raises(KeyError):
            study.row("readv")
