"""The remote executor: a worker fleet is a pure scheduling choice.

Extends the executor-equivalence contract of
``test_engine_executors.py`` across the network: ``executor="remote"``
against in-process :class:`FabricWorker` fleets must produce reports
byte-identical to serial execution, survive a worker dying mid-batch
by re-enqueueing its lost chunks on the survivors (the same
``worker-crash`` fault taxonomy and retry budget the process pool
uses), and fail with typed, actionable errors when the whole fleet is
unreachable.
"""

from __future__ import annotations

import json

import pytest

from repro.appsim.corpus import build, seven_apps
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.engine import ProbeEngine
from repro.core.faults import (
    FAULT_WORKER_CRASH,
    FaultPolicy,
    PoolRecoveredNotice,
    ProbeFaultError,
)
from repro.core.policy import stubbing
from repro.core.runner import BackendCapabilities
from repro.fabric.executor import (
    FabricConnectionError,
    FabricExecutor,
    parse_worker_address,
)
from repro.fabric.protocol import (
    KIND_ACK,
    KIND_CHUNK,
    KIND_HEARTBEAT,
    FabricProtocolError,
    decode_chunk,
    encode_ack,
    encode_frame,
    read_frame,
)
from repro.fabric.worker import FabricWorker, _ConnectionHandler


def _digest(result):
    return json.dumps(result.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def fleet():
    """Two live in-process workers, shared by the equivalence tests."""
    with FabricWorker() as one, FabricWorker() as two:
        yield (one.address, two.address)


def _analyze(app, workload, *, executor="serial", workers=()):
    with Analyzer(AnalyzerConfig(
        replicas=3,
        parallel=1 if executor == "serial" else 3,
        executor=executor,
        workers=workers,
    )) as analyzer:
        return analyzer.analyze(
            app.backend(), app.workload(workload),
            app=app.name, app_version=app.version,
        )


class TestRemoteEquivalence:
    def test_remote_reports_byte_identical_to_serial(self, fleet):
        for app in seven_apps()[:3]:
            serial = _analyze(app, "bench")
            remote = _analyze(
                app, "bench", executor="remote", workers=fleet
            )
            assert _digest(remote) == _digest(serial), app.name

    def test_remote_resolves_regardless_of_parallel(self, fleet):
        """Fleet width comes from the worker count, not --jobs: even
        parallel=1 ships chunks instead of degrading to serial."""
        with ProbeEngine(
            parallel=1, executor="remote", workers=fleet
        ) as engine:
            assert engine.executor_name == "remote"
            assert engine.mode_for(build("redis").backend()) == "remote"

    def test_unshardable_backend_falls_back_locally(self, fleet):
        backend = build("redis").backend()
        backend._poison = lambda: None  # defeats the pickle probe
        with ProbeEngine(
            parallel=3, executor="remote", workers=fleet
        ) as engine:
            assert engine.mode_for(backend) == "thread"
        with ProbeEngine(
            parallel=1, executor="remote", workers=fleet
        ) as engine:
            assert engine.mode_for(backend) == "serial"


# -- failure injection -------------------------------------------------------


class _DropAfterAckHandler(_ConnectionHandler):
    """Handshakes fine, then hangs up right after ACKing each chunk —
    the footprint of a worker SIGKILLed mid-execution (the scheduler
    saw the ACK, never the RESULT)."""

    def _chunk_loop(self, worker, reader, send) -> None:
        while True:
            frame = read_frame(reader)
            if frame is None:
                return
            kind, payload = frame
            if kind == KIND_HEARTBEAT:
                continue
            if kind != KIND_CHUNK:
                raise FabricProtocolError(f"unexpected kind {kind}")
            chunk_id, _job = decode_chunk(payload)
            send(encode_frame(KIND_ACK, encode_ack(chunk_id)))
            self.request.close()
            return


class _MuteHandler(_ConnectionHandler):
    """Accepts chunks but never answers them. Combined with a huge
    ``heartbeat_s`` this is the footprint of a *wedged* (not crashed)
    worker; only the silence timeout can unmask it."""

    def _chunk_loop(self, worker, reader, send) -> None:
        while read_frame(reader) is not None:
            pass


def _flaky_worker(handler, **kwargs):
    worker = FabricWorker(**kwargs)
    # socketserver reads RequestHandlerClass at dispatch time, so the
    # swap applies to every connection this worker accepts.
    worker._server.RequestHandlerClass = handler
    return worker


_RECOVERY_POLICY = FaultPolicy(
    retries=1, retry_backoff_s=0.0, on_fault="degrade"
)


class TestLostChunkReenqueue:
    def test_dead_worker_chunks_requeue_on_survivor(self):
        app = build("redis")
        notices = []
        with _flaky_worker(_DropAfterAckHandler) as flaky, \
                FabricWorker() as steady:
            with ProbeEngine(
                parallel=3, executor="remote",
                workers=(flaky.address, steady.address),
                cache=False, fault_policy=_RECOVERY_POLICY,
                on_notice=notices.append,
            ) as engine:
                outcome = engine.run_replicas(
                    app.backend(), app.workload("health"),
                    stubbing("futex"), 3, early_exit=False,
                )
                stats = engine.stats
        recoveries = [
            n for n in notices if isinstance(n, PoolRecoveredNotice)
        ]
        assert recoveries and sum(n.lost_runs for n in recoveries) >= 1
        assert stats.faulted == 0  # recovered, not quarantined
        assert stats.runs_requested == (
            stats.runs_executed + stats.cache_hits
            + stats.replicas_skipped + stats.faulted
        )
        serial = ProbeEngine(cache=False).run_replicas(
            app.backend(), app.workload("health"),
            stubbing("futex"), 3, early_exit=False,
        )
        assert [r.to_dict() for r in outcome.results] == [
            r.to_dict() for r in serial.results
        ]

    def test_every_worker_dead_exhausts_the_budget(self):
        app = build("redis")
        with _flaky_worker(_DropAfterAckHandler) as flaky:
            with ProbeEngine(
                parallel=2, executor="remote", workers=(flaky.address,),
                cache=False,
                fault_policy=FaultPolicy(
                    retries=1, retry_backoff_s=0.0, on_fault="fail"
                ),
            ) as engine:
                with pytest.raises(
                    (ProbeFaultError, FabricConnectionError)
                ) as excinfo:
                    engine.run_replicas(
                        app.backend(), app.workload("health"),
                        stubbing("futex"), 2,
                    )
            if isinstance(excinfo.value, ProbeFaultError):
                assert excinfo.value.fault.kind == FAULT_WORKER_CRASH

    def test_silent_worker_is_presumed_dead(self):
        app = build("redis")
        notices = []
        # The mute worker never beats (heartbeat_s is an hour); the
        # steady one beats well inside the 1s silence budget.
        with _flaky_worker(_MuteHandler, heartbeat_s=3600.0) as mute, \
                FabricWorker(heartbeat_s=0.2) as steady:
            with ProbeEngine(
                parallel=3, executor="remote",
                workers=(mute.address, steady.address),
                cache=False, fault_policy=_RECOVERY_POLICY,
                on_notice=notices.append,
            ) as engine:
                engine._fabric = FabricExecutor(
                    engine.workers, dead_after_s=1.0
                ).connect()
                outcome = engine.run_replicas(
                    app.backend(), app.workload("health"),
                    stubbing("futex"), 3, early_exit=False,
                )
        serial = ProbeEngine(cache=False).run_replicas(
            app.backend(), app.workload("health"),
            stubbing("futex"), 3, early_exit=False,
        )
        assert [r.to_dict() for r in outcome.results] == [
            r.to_dict() for r in serial.results
        ]
        assert any(
            isinstance(n, PoolRecoveredNotice) for n in notices
        )


class TestConnectionErrors:
    def test_no_reachable_workers_is_actionable(self):
        executor = FabricExecutor(["127.0.0.1:1"])
        with pytest.raises(FabricConnectionError) as excinfo:
            executor.connect()
        assert "loupe worker" in str(excinfo.value)

    def test_worker_without_process_safety_is_refused(self):
        caps = BackendCapabilities(
            deterministic=True, parallel_safe=True, process_safe=False
        )
        with FabricWorker(capabilities=caps) as worker:
            executor = FabricExecutor([worker.address])
            with pytest.raises(FabricConnectionError) as excinfo:
                executor.connect()
            assert "process_safe" in str(excinfo.value)

    def test_worker_addresses_parse_or_refuse(self):
        assert parse_worker_address("host:1234") == ("host", 1234)
        with pytest.raises(FabricConnectionError):
            parse_worker_address("no-port")
        with pytest.raises(FabricConnectionError):
            parse_worker_address("host:http")

    def test_empty_fleet_is_refused_up_front(self):
        with pytest.raises(FabricConnectionError):
            FabricExecutor([])
        with pytest.raises(ValueError):
            ProbeEngine(executor="remote")
