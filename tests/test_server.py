"""Tests for the campaign server: job store, state machine, worker
pool, HTTP surface, CLI clients, and cooperative cancellation."""

import dataclasses
import json
import os
import signal
import threading
import time

import pytest

from repro.api.events import SCHEMA_VERSION, envelope
from repro.api.registry import (
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.api.session import LoupeSession
from repro.cli import main
from repro.core.analyzer import AnalyzerConfig
from repro.errors import AnalysisCancelledError, LoupeError
from repro.server import (
    CANCELLED,
    DONE,
    FAILED,
    LEGAL_TRANSITIONS,
    QUARANTINED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    CampaignServer,
    JobSpec,
    JobSpecError,
    JobStateError,
    JobStore,
    ServiceClient,
    ServiceError,
    UnknownJobError,
    encode_report,
)

DEADLINE_S = 30.0


def _wait_until(predicate, *, timeout=DEADLINE_S, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached within deadline")


class _SlowBackend:
    """Delegating wrapper that sleeps before every run — makes a
    campaign slow enough to be observably ``running``."""

    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s
        self.name = getattr(inner, "name", "slow")
        self.deterministic = getattr(inner, "deterministic", False)

    def capabilities(self):
        from repro.core.runner import capabilities_of

        return capabilities_of(self.inner)

    def run(self, workload, policy, *, replica=0):
        time.sleep(self.delay_s)
        return self.inner.run(workload, policy, replica=replica)


@pytest.fixture
def slow_backend_name():
    def factory(request):
        target = resolve_backend("appsim")(request)
        return dataclasses.replace(
            target, backend=_SlowBackend(target.backend, 0.05)
        )

    register_backend("slowsim", factory, replace=True)
    yield "slowsim"
    unregister_backend("slowsim")


@pytest.fixture
def server(tmp_path):
    with CampaignServer(tmp_path / "svc", workers=1) as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(server.url)


QUICK_SPEC = {"app": "weborf", "workload": "health", "replicas": 1}
SLOW_SPEC = {**QUICK_SPEC, "backend": "slowsim"}


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict({"app": "redis", "replicas": 2})
        assert spec.app == "redis"
        assert spec.replicas == 2
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(JobSpecError, match="replcias"):
            JobSpec.from_dict({"replcias": 2})

    def test_non_object_rejected(self):
        with pytest.raises(JobSpecError, match="JSON object"):
            JobSpec.from_dict(["not", "a", "spec"])

    def test_unknown_workload_rejected(self):
        with pytest.raises(JobSpecError, match="workload"):
            JobSpec.from_dict({"workload": "nope"})

    def test_invalid_analyzer_knob_rejected(self):
        with pytest.raises(JobSpecError):
            JobSpec.from_dict({"on_fault": "explode"})

    def test_maps_to_analyzer_config(self):
        spec = JobSpec.from_dict({
            "replicas": 2, "jobs": 3, "on_fault": "degrade",
            "retries": 1, "probe_timeout": 4.0,
        })
        config = spec.analyzer_config()
        assert config.replicas == 2
        assert config.parallel == 3
        assert config.on_fault == "degrade"
        assert config.retries == 1
        assert config.probe_timeout_s == 4.0


class TestStateMachine:
    def _job_in_state(self, store, state):
        meta = store.new_job(JobSpec())
        if state == QUEUED:
            return meta.id
        if state == CANCELLED:
            store.transition(meta.id, CANCELLED)
            return meta.id
        store.transition(meta.id, RUNNING)
        if state != RUNNING:
            store.transition(meta.id, state)
        return meta.id

    @pytest.mark.parametrize("source", STATES)
    @pytest.mark.parametrize("wanted", STATES)
    def test_every_transition(self, tmp_path, source, wanted):
        store = JobStore(tmp_path)
        job_id = self._job_in_state(store, source)
        assert store.meta(job_id).status == source
        if (source, wanted) in LEGAL_TRANSITIONS:
            assert store.transition(job_id, wanted).status == wanted
        else:
            with pytest.raises(JobStateError):
                store.transition(job_id, wanted)
            assert store.meta(job_id).status == source

    def test_terminal_states_closed(self):
        for state in TERMINAL_STATES:
            assert not any(src == state for src, _ in LEGAL_TRANSITIONS)

    def test_unknown_job(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(UnknownJobError):
            store.meta("job-999999")
        with pytest.raises(UnknownJobError):
            store.transition("job-999999", RUNNING)

    def test_timestamps_and_reason(self, tmp_path):
        store = JobStore(tmp_path)
        meta = store.new_job(JobSpec())
        assert meta.created_at > 0 and meta.started_at is None
        running = store.transition(meta.id, RUNNING)
        assert running.started_at is not None
        failed = store.transition(meta.id, FAILED, reason="boom")
        assert failed.finished_at is not None
        assert failed.reason == "boom"

    def test_ids_monotonic_across_reopen(self, tmp_path):
        first = JobStore(tmp_path).new_job(JobSpec())
        second = JobStore(tmp_path).new_job(JobSpec())
        assert second.id > first.id


class TestRecovery:
    def test_running_jobs_resume_after_server_restart(self, tmp_path):
        store = JobStore(tmp_path)
        orphan = store.new_job(JobSpec())
        store.transition(orphan.id, RUNNING)
        queued_a = store.new_job(JobSpec())
        queued_b = store.new_job(JobSpec())
        finished = store.new_job(JobSpec())
        store.transition(finished.id, RUNNING)
        store.transition(finished.id, DONE)

        reopened = JobStore(tmp_path)
        resumed, quarantined, requeue = reopened.recover()
        assert [m.id for m in resumed] == [orphan.id]
        assert resumed[0].status == QUEUED
        assert resumed[0].attempt == 2
        assert resumed[0].history[-1]["outcome"] == "server-restart"
        assert quarantined == []
        assert [m.id for m in requeue] == [queued_a.id, queued_b.id]
        assert reopened.meta(finished.id).status == DONE

    def test_recovery_quarantines_exhausted_attempts(self, tmp_path):
        store = JobStore(tmp_path)
        orphan = store.new_job(JobSpec())
        store.transition(orphan.id, RUNNING)

        resumed, quarantined, _ = JobStore(tmp_path).recover(max_attempts=1)
        assert resumed == []
        assert [m.id for m in quarantined] == [orphan.id]
        assert quarantined[0].status == QUARANTINED
        assert "attempt budget exhausted" in quarantined[0].reason
        assert quarantined[0].history[-1]["outcome"] == "server-restart"

    def test_server_restart_drains_survivors(self, tmp_path):
        data_dir = tmp_path / "svc"
        store = JobStore(data_dir)
        orphan = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(orphan.id, RUNNING)
        survivor = store.new_job(JobSpec(**QUICK_SPEC))

        with CampaignServer(data_dir, workers=1) as server:
            client = ServiceClient(server.url)
            final = _wait_until(lambda: (
                client.job(survivor.id)["status"] in TERMINAL_STATES
                and client.job(survivor.id)
            ))
            assert final["status"] == DONE
            # The orphaned running job is not failed any more — it
            # resumes: requeued with attempt 2 and run to completion.
            orphan_final = _wait_until(lambda: (
                client.job(orphan.id)["status"] in TERMINAL_STATES
                and client.job(orphan.id)
            ))
            assert orphan_final["status"] == DONE
            assert orphan_final["attempt"] == 2


class TestHTTPSurface:
    def test_health_and_stats_shape(self, server, client):
        health = client.health()
        assert health["ok"] is True
        assert health["url"] == server.url
        stats = client.stats()
        assert set(stats) == {
            "queue_depth", "workers", "busy_workers", "jobs",
            "queue", "attempts", "run_cache", "cache", "fleet",
        }
        assert stats["jobs"]["total"] == 0
        assert all(stats["jobs"][state] == 0 for state in STATES)
        assert stats["queue"]["draining"] is False
        assert stats["attempts"]["retries"] == 0

    def test_submit_runs_to_done(self, client):
        meta = client.submit(QUICK_SPEC)
        assert meta["status"] == QUEUED
        final = _wait_until(lambda: (
            client.job(meta["id"])["status"] in TERMINAL_STATES
            and client.job(meta["id"])
        ))
        assert final["status"] == DONE
        assert final["engine_stats"]["runs_requested"] > 0
        report = client.report(meta["id"])
        assert report["app"] == "weborf"
        assert client.stats()["jobs"][DONE] == 1

    def test_submit_unknown_backend_rejected(self, client):
        with pytest.raises(ServiceError) as caught:
            client.submit({**QUICK_SPEC, "backend": "warpdrive"})
        assert caught.value.status == 400
        assert "warpdrive" in caught.value.message

    def test_submit_malformed_spec_rejected(self, client):
        with pytest.raises(ServiceError) as caught:
            client.submit({"replcias": 2})
        assert caught.value.status == 400

    def test_unknown_job_is_404(self, client):
        for call in (
            lambda: client.job("job-999999"),
            lambda: client.cancel("job-999999"),
            lambda: client.report("job-999999"),
            lambda: client.events("job-999999"),
        ):
            with pytest.raises(ServiceError) as caught:
                call()
            assert caught.value.status == 404

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as caught:
            client._json("GET", "/nope")
        assert caught.value.status == 404

    def test_report_before_done_is_404(self, client, slow_backend_name):
        meta = client.submit(SLOW_SPEC)
        with pytest.raises(ServiceError) as caught:
            client.report(meta["id"])
        assert caught.value.status == 404
        client.cancel(meta["id"])

    def test_jobs_listing(self, client):
        first = client.submit(QUICK_SPEC)
        second = client.submit(QUICK_SPEC)
        listed = client.jobs()
        assert [meta["id"] for meta in listed] == [first["id"], second["id"]]


class TestEventStreaming:
    def test_events_paginate_with_since(self, client):
        meta = client.submit(QUICK_SPEC)
        _wait_until(
            lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
        )
        lines, next_since, status = client.events(meta["id"])
        assert status == DONE
        assert next_since == len(lines) > 0
        tail_lines, tail_next, _ = client.events(
            meta["id"], since=next_since - 1
        )
        assert tail_lines == lines[-1:]
        assert tail_next == next_since
        empty, unchanged, _ = client.events(meta["id"], since=next_since)
        assert empty == [] and unchanged == next_since

    def test_long_poll_waits_for_lines(self, client, slow_backend_name):
        meta = client.submit(SLOW_SPEC)
        lines, next_since, _status = client.events(
            meta["id"], since=0, timeout=10.0
        )
        assert lines and next_since == len(lines)
        client.cancel(meta["id"])

    def test_every_line_carries_schema_version(self, client):
        meta = client.submit(QUICK_SPEC)
        _wait_until(
            lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
        )
        lines, _, _ = client.events(meta["id"])
        for line in lines:
            document = json.loads(line)
            assert document["schema_version"] == SCHEMA_VERSION
            assert "event" in document

    def test_replay_is_byte_identical_to_the_job_log(self, server, client):
        meta = client.submit(QUICK_SPEC)
        _wait_until(
            lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
        )
        lines, _, _ = client.events(meta["id"])
        on_disk = server.store.events_path(meta["id"]).read_text()
        assert "".join(lines) == on_disk


def _normalize_durations(line):
    document = json.loads(line)
    for key in list(document):
        if key.endswith("duration_s"):
            document[key] = 0.0
    if document.get("event") == "store_stats":
        # The run-cache store's identity fields are inherently
        # run-dependent: the server's job checkpoints under
        # jobs/<id>/runcache.sqlite, the direct run under its own
        # path, and file sizes track sqlite page allocation.
        document["path"] = ""
        document["file_bytes"] = 0
    return document


class TestByteIdentityWithDirectRun:
    def test_report_and_events_match_direct_session(self, client, tmp_path):
        meta = client.submit(QUICK_SPEC)
        _wait_until(
            lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
        )
        assert client.job(meta["id"])["status"] == DONE
        server_report = client.report_bytes(meta["id"])
        server_lines, _, _ = client.events(meta["id"])

        # The server gives every job a private checkpoint store, which
        # adds one store_stats event to the stream — so the direct
        # comparison run gets a store of its own, and the store's
        # identity fields are normalized below.
        spec = JobSpec.from_dict(QUICK_SPEC)
        config = dataclasses.replace(
            spec.analyzer_config(),
            run_cache=str(tmp_path / "direct.sqlite"),
        )
        direct_lines = []
        with LoupeSession(config=config) as session:
            outcome = session.analyze(
                spec.request(),
                on_event=lambda event: direct_lines.append(
                    json.dumps(event.to_dict()) + "\n"
                ),
            )
        assert server_report == encode_report(outcome).encode()

        stripped = []
        for line in server_lines:
            document = json.loads(line)
            assert document.pop("schema_version") == SCHEMA_VERSION
            stripped.append(json.dumps(document) + "\n")
        # Stripping the envelope restores the exact --events jsonl
        # byte layout; wall-clock durations and store identity are the
        # legitimately run-dependent fields.
        assert [
            _normalize_durations(line) for line in stripped
        ] == [
            _normalize_durations(line) for line in direct_lines
        ]
        identical = [
            pair for pair in zip(stripped, direct_lines)
            if "duration_s" not in pair[0]
            and '"store_stats"' not in pair[0]
        ]
        assert all(ours == theirs for ours, theirs in identical)


class TestCancellation:
    def test_cancel_queued_job(self, client, slow_backend_name):
        blocker = client.submit(SLOW_SPEC)
        _wait_until(lambda: client.job(blocker["id"])["status"] == RUNNING)
        queued = client.submit(QUICK_SPEC)
        cancelled = client.cancel(queued["id"])
        assert cancelled["status"] == CANCELLED
        assert cancelled["reason"] == "cancelled while queued"
        # The dead job must not run once the worker frees up.
        client.cancel(blocker["id"])
        _wait_until(
            lambda: client.job(blocker["id"])["status"] in TERMINAL_STATES
        )
        time.sleep(0.2)
        assert client.job(queued["id"])["status"] == CANCELLED
        assert not client.events(queued["id"])[0]

    def test_cancel_running_job_keeps_stats(self, client, slow_backend_name):
        meta = client.submit(SLOW_SPEC)
        _wait_until(lambda: client.job(meta["id"])["status"] == RUNNING)
        client.cancel(meta["id"])
        final = _wait_until(lambda: (
            client.job(meta["id"])["status"] in TERMINAL_STATES
            and client.job(meta["id"])
        ))
        assert final["status"] == CANCELLED
        assert final["reason"] == "cancelled while running"
        lines, _, _ = client.events(meta["id"])
        kinds = [json.loads(line)["event"] for line in lines]
        assert kinds[-1] == "analysis_cancelled"
        assert "engine_stats" in kinds

    def test_cancel_is_idempotent(self, client, slow_backend_name):
        blocker = client.submit(SLOW_SPEC)
        queued = client.submit(QUICK_SPEC)
        assert client.cancel(queued["id"])["status"] == CANCELLED
        assert client.cancel(queued["id"])["status"] == CANCELLED
        client.cancel(blocker["id"])

    def test_cancel_terminal_job_is_409(self, client):
        meta = client.submit(QUICK_SPEC)
        _wait_until(lambda: client.job(meta["id"])["status"] == DONE)
        with pytest.raises(ServiceError) as caught:
            client.cancel(meta["id"])
        assert caught.value.status == 409

    def test_concurrent_submit_and_cancel_races(self, tmp_path):
        with CampaignServer(tmp_path / "race", workers=2) as server:
            client = ServiceClient(server.url)
            ids = [client.submit(QUICK_SPEC)["id"] for _ in range(6)]
            errors = []

            def cancel_all():
                for job_id in ids:
                    try:
                        client.cancel(job_id)
                    except ServiceError as error:
                        # Losing the race to a finished job is the one
                        # legitimate refusal.
                        if error.status != 409:
                            errors.append(error)

            threads = [
                threading.Thread(target=cancel_all) for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            for job_id in ids:
                final = _wait_until(lambda j=job_id: (
                    client.job(j)["status"] in TERMINAL_STATES
                    and client.job(j)
                ))
                assert final["status"] in (DONE, CANCELLED)


class TestSessionCancellation:
    def test_immediate_cancel(self):
        events = []
        with LoupeSession() as session:
            with pytest.raises(AnalysisCancelledError) as caught:
                session.analyze(
                    "weborf", workload="health",
                    on_event=events.append,
                    cancel_check=lambda: True,
                )
        kinds = [event.kind for event in events]
        assert kinds[0] == "analysis_started"
        assert kinds[-1] == "analysis_cancelled"
        assert caught.value.stats is not None

    def test_cancel_reason_string_propagates(self):
        events = []
        with LoupeSession() as session:
            with pytest.raises(AnalysisCancelledError):
                session.analyze(
                    "weborf", workload="health",
                    on_event=events.append,
                    cancel_check=lambda: "signal",
                )
        assert events[-1].reason == "signal"

    def test_cancel_after_some_waves_has_partial_stats(self):
        calls = {"n": 0}

        def check():
            calls["n"] += 1
            return calls["n"] > 3

        with LoupeSession() as session:
            with pytest.raises(AnalysisCancelledError) as caught:
                session.analyze(
                    "weborf", workload="health", cancel_check=check
                )
        assert caught.value.stats.runs_requested > 0

    def test_cancel_check_does_not_change_config_identity(self):
        plain = AnalyzerConfig()
        hooked = AnalyzerConfig(cancel_check=lambda: False)
        assert plain == hooked
        assert hash(plain) == hash(hooked)

    def test_uncancelled_run_completes(self):
        with LoupeSession() as session:
            result = session.analyze(
                "weborf", workload="health", cancel_check=lambda: False
            )
        assert result.app == "weborf"


class TestSigintHelper:
    def test_first_interrupt_cancels_second_raises(self, capsys):
        from repro.cli import _sigint_cancel

        cancel_check, restore = _sigint_cancel()
        try:
            assert cancel_check() is False
            os.kill(os.getpid(), signal.SIGINT)
            _wait_until(lambda: cancel_check() == "signal", timeout=5.0)
            assert "finishing the wave in flight" in capsys.readouterr().err
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
                for _ in range(1000):
                    time.sleep(0.001)
        finally:
            restore()

    def test_off_main_thread_degrades(self):
        from repro.cli import _sigint_cancel

        outcome = {}

        def probe():
            cancel_check, restore = _sigint_cancel()
            outcome["check"] = cancel_check()
            restore()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert outcome["check"] is False


class TestServerRunCache:
    def test_service_default_store_is_inherited_and_reported(self, tmp_path):
        cache_path = tmp_path / "runs.jsonl"
        with CampaignServer(
            tmp_path / "svc", workers=1, run_cache=str(cache_path)
        ) as server:
            client = ServiceClient(server.url)
            meta = client.submit(QUICK_SPEC)
            _wait_until(
                lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
            )
            spec_doc = json.loads(
                server.store.spec_path(meta["id"]).read_text()
            )
            assert spec_doc["run_cache"] == str(cache_path)
            stats = client.stats()
            assert stats["run_cache"]["entries"] > 0
            assert stats["run_cache"]["kind"] == "jsonl"

        # GET /stats embeds exactly the `loupe cache stats --json` shape.
        exit_code = main(["cache", "stats", str(cache_path), "--json"])
        assert exit_code == 0

    def test_explicit_spec_store_wins(self, tmp_path):
        service_cache = tmp_path / "service.jsonl"
        job_cache = tmp_path / "job.jsonl"
        with CampaignServer(
            tmp_path / "svc", workers=1, run_cache=str(service_cache)
        ) as server:
            client = ServiceClient(server.url)
            meta = client.submit(
                {**QUICK_SPEC, "run_cache": str(job_cache)}
            )
            _wait_until(
                lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
            )
        assert job_cache.exists()
        assert not service_cache.exists()


class TestCLIClients:
    def test_submit_jobs_tail_cancel_flow(self, server, capsys):
        url = ["--url", server.url]
        assert main(["submit", *url, "--app", "weborf",
                     "--workload", "health", "--replicas", "1"]) == 0
        job_id = capsys.readouterr().out.split()[0]
        assert job_id.startswith("job-")

        exit_code = main(["tail", *url, job_id])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = captured.out.splitlines()
        assert lines
        assert json.loads(lines[0])["schema_version"] == SCHEMA_VERSION
        assert f"{job_id} done" in captured.err

        assert main(["jobs", *url]) == 0
        assert job_id in capsys.readouterr().out

        assert main(["jobs", *url, "--json"]) == 0
        listed = json.loads(capsys.readouterr().out)
        assert listed[0]["id"] == job_id

    def test_tail_of_cancelled_job_exits_3(
        self, server, capsys, slow_backend_name
    ):
        url = ["--url", server.url]
        client = ServiceClient(server.url)
        blocker = client.submit(SLOW_SPEC)
        queued = client.submit(QUICK_SPEC)
        assert main(["cancel", *url, queued["id"]]) == 0
        assert f"{queued['id']} cancelled" in capsys.readouterr().out
        assert main(["tail", *url, queued["id"]]) == 3
        client.cancel(blocker["id"])

    def test_submit_tail_streams_to_terminal(self, server, capsys):
        exit_code = main([
            "submit", "--url", server.url, "--app", "weborf",
            "--workload", "health", "--replicas", "1", "--tail",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "analysis_finished" in captured.out

    def test_cancel_terminal_job_is_an_error(self, server, capsys):
        client = ServiceClient(server.url)
        meta = client.submit(QUICK_SPEC)
        _wait_until(
            lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
        )
        assert main(["cancel", "--url", server.url, meta["id"]]) == 2
        assert "409" in capsys.readouterr().err

    def test_discovery_file_resolves_the_server(self, server, capsys):
        data_dir = str(server.data_dir)
        assert main(["jobs", "--data-dir", data_dir]) == 0
        assert "no jobs" in capsys.readouterr().out

    def test_missing_discovery_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["jobs", "--data-dir", str(tmp_path)]) == 2
        assert "no running server" in capsys.readouterr().err


class TestDiscoveryFile:
    def test_written_on_start_removed_on_close(self, tmp_path):
        server = CampaignServer(tmp_path / "svc")
        server.start()
        document = json.loads(server.discovery_path.read_text())
        assert document["url"] == server.url
        assert document["pid"] == os.getpid()
        server.close()
        assert not server.discovery_path.exists()

    def test_discover_url_errors_without_file(self, tmp_path):
        from repro.server import discover_url

        with pytest.raises(LoupeError, match="no running server"):
            discover_url(tmp_path)
