"""Tests for interposition policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    Action,
    FakeStrategy,
    InterpositionPolicy,
    combined,
    fake_strategy,
    faking,
    passthrough,
    stubbing,
)
from repro.errors import PolicyError

syscall_names = st.sampled_from(
    ["read", "write", "futex", "openat", "close", "brk", "mmap", "ioctl"]
)


class TestConstruction:
    def test_passthrough_alters_nothing(self):
        policy = passthrough()
        assert policy.altered_features() == frozenset()
        assert policy.action_for("write") is Action.PASSTHROUGH

    def test_stubbing_one_feature(self):
        policy = stubbing("futex")
        assert policy.action_for("futex") is Action.STUB
        assert policy.action_for("read") is Action.PASSTHROUGH

    def test_faking_one_feature(self):
        policy = faking("brk")
        assert policy.action_for("brk") is Action.FAKE

    def test_unknown_syscall_rejected(self):
        with pytest.raises(PolicyError):
            stubbing("not_a_syscall")

    def test_subfeature_key_in_syscall_map_rejected(self):
        with pytest.raises(PolicyError):
            InterpositionPolicy(syscall_actions={"fcntl:F_SETFL": Action.STUB})

    def test_plain_key_in_subfeature_map_rejected(self):
        with pytest.raises(PolicyError):
            InterpositionPolicy(subfeature_actions={"fcntl": Action.STUB})

    def test_relative_pseudofile_prefix_rejected(self):
        with pytest.raises(PolicyError):
            InterpositionPolicy(pseudofile_actions={"proc/meminfo": Action.STUB})


class TestSubfeaturePrecedence:
    def test_subfeature_overrides_parent(self):
        policy = passthrough().with_feature("fcntl:F_SETFD", Action.STUB)
        assert policy.action_for("fcntl", "F_SETFD") is Action.STUB
        assert policy.action_for("fcntl", "F_SETFL") is Action.PASSTHROUGH
        assert policy.action_for("fcntl") is Action.PASSTHROUGH

    def test_parent_action_applies_without_override(self):
        policy = stubbing("fcntl")
        assert policy.action_for("fcntl", "F_SETFL") is Action.STUB

    def test_mixed_granularity(self):
        policy = stubbing("fcntl").with_feature("fcntl:F_SETFL", Action.PASSTHROUGH)
        assert policy.action_for("fcntl", "F_SETFL") is Action.PASSTHROUGH
        assert policy.action_for("fcntl", "F_GETFL") is Action.STUB


class TestPseudoFiles:
    def test_prefix_match(self):
        policy = passthrough().with_feature("/proc", Action.STUB)
        assert policy.action_for_path("/proc/meminfo") is Action.STUB
        assert policy.action_for_path("/dev/null") is Action.PASSTHROUGH

    def test_longest_prefix_wins(self):
        policy = (
            passthrough()
            .with_feature("/proc", Action.STUB)
            .with_feature("/proc/self", Action.FAKE)
        )
        assert policy.action_for_path("/proc/self/status") is Action.FAKE
        assert policy.action_for_path("/proc/meminfo") is Action.STUB

    def test_exact_path(self):
        policy = passthrough().with_feature("/dev/urandom", Action.FAKE)
        assert policy.action_for_path("/dev/urandom") is Action.FAKE
        assert policy.action_for_path("/dev/urandom2") is Action.PASSTHROUGH

    def test_action_for_feature_dispatch(self):
        policy = (
            passthrough()
            .with_feature("/dev/null", Action.STUB)
            .with_feature("futex", Action.FAKE)
            .with_feature("fcntl:F_SETFD", Action.STUB)
        )
        assert policy.action_for_feature("/dev/null") is Action.STUB
        assert policy.action_for_feature("futex") is Action.FAKE
        assert policy.action_for_feature("fcntl:F_SETFD") is Action.STUB


class TestCombined:
    def test_combined_policy(self):
        policy = combined(stubs=["read"], fakes=["write"])
        assert policy.action_for("read") is Action.STUB
        assert policy.action_for("write") is Action.FAKE

    def test_overlap_rejected(self):
        with pytest.raises(PolicyError):
            combined(stubs=["read"], fakes=["read"])

    def test_empty_combined_is_passthrough(self):
        assert combined().altered_features() == frozenset()

    @given(
        st.sets(syscall_names, max_size=4),
        st.sets(syscall_names, max_size=4),
    )
    def test_altered_features_match_inputs(self, stubs, fakes):
        fakes = fakes - stubs
        policy = combined(stubs=stubs, fakes=fakes)
        assert policy.altered_features() == frozenset(stubs | fakes)


class TestDescribeAndImmutability:
    def test_describe_passthrough(self):
        assert passthrough().describe() == "passthrough"

    def test_describe_lists_actions(self):
        text = combined(stubs=["futex"], fakes=["brk"]).describe()
        assert "futex=stub" in text
        assert "brk=fake" in text

    def test_with_feature_does_not_mutate(self):
        base = stubbing("read")
        derived = base.with_feature("write", Action.FAKE)
        assert base.action_for("write") is Action.PASSTHROUGH
        assert derived.action_for("write") is Action.FAKE


class TestFakeStrategies:
    def test_paper_motivated_strategies(self):
        assert fake_strategy("brk") is FakeStrategy.FIRST_ARG
        assert fake_strategy("write") is FakeStrategy.LENGTH_ARG3
        assert fake_strategy("socket") is FakeStrategy.FAKE_FD
        assert fake_strategy("clone") is FakeStrategy.FAKE_PID

    def test_default_is_zero(self):
        assert fake_strategy("setsid") is FakeStrategy.ZERO
