"""Smoke tests: every shipped example must run and say what it claims."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: float = 300.0) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "must implement" in out
        assert "message of hope" in out

    def test_support_plan(self):
        out = _run("support_plan.py")
        assert "step-by-step support plan" in out
        assert "mongodb" in out

    def test_resilience_patterns(self):
        out = _run("resilience_patterns.py")
        assert "passes" in out and "FAILS" in out
        assert "-66%" in out or "futex" in out

    def test_partial_implementation(self):
        out = _run("partial_implementation.py")
        assert "arch_prctl" in out
        assert "F_SETFL" in out

    @pytest.mark.ptrace
    def test_real_tracing(self):
        out = _run("real_tracing.py")
        assert "live trace of /bin/echo" in out
        assert "stub  write -> exit" in out

    def test_static_audit(self):
        out = _run("static_audit.py")
        assert "soundness violations:  0" in out
        assert "audit verdict: CLEAN" in out

    def test_corpus_study(self):
        out = _run("corpus_study.py", timeout=600.0)
        assert "Figure 3" in out
        assert "Knowledge transfer" in out
