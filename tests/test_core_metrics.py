"""Tests for the metric-guarding statistics (Section 5.3 machinery)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.metrics import (
    DEFAULT_MARGIN,
    ImpactSummary,
    SampleStats,
    compare,
    relative_delta,
    welch_statistic,
)

finite_floats = st.floats(
    min_value=1.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSampleStats:
    def test_empty(self):
        stats = SampleStats.of([])
        assert stats.n == 0
        assert stats.mean == 0.0

    def test_single_sample(self):
        stats = SampleStats.of([42.0])
        assert stats.n == 1
        assert stats.mean == 42.0
        assert stats.std == 0.0
        assert stats.sem == 0.0

    def test_known_values(self):
        stats = SampleStats.of([2.0, 4.0, 6.0])
        assert stats.mean == pytest.approx(4.0)
        assert stats.std == pytest.approx(2.0)

    @given(st.lists(finite_floats, min_size=2, max_size=20))
    def test_std_nonnegative_and_mean_bounded(self, samples):
        stats = SampleStats.of(samples)
        assert stats.std >= 0.0
        slack = 1e-9 * max(abs(x) for x in samples)
        assert min(samples) - slack <= stats.mean <= max(samples) + slack


class TestWelch:
    def test_identical_deterministic_samples(self):
        a = SampleStats.of([5.0, 5.0, 5.0])
        assert welch_statistic(a, a) == 0.0

    def test_deterministic_difference_is_infinite(self):
        a = SampleStats.of([5.0, 5.0])
        b = SampleStats.of([6.0, 6.0])
        assert math.isinf(welch_statistic(a, b))

    def test_sign_follows_direction(self):
        a = SampleStats.of([10.0, 10.1, 9.9])
        b = SampleStats.of([20.0, 20.1, 19.9])
        assert welch_statistic(a, b) > 0
        assert welch_statistic(b, a) < 0

    def test_empty_side_is_zero(self):
        a = SampleStats.of([])
        b = SampleStats.of([1.0])
        assert welch_statistic(a, b) == 0.0


class TestCompare:
    def test_within_margin_not_significant(self):
        """A 2% shift stays under the paper's 3% error margin."""
        result = compare([100.0, 100.0, 100.0], [102.0, 102.0, 102.0])
        assert result.delta == pytest.approx(0.02)
        assert not result.significant

    def test_beyond_margin_significant(self):
        result = compare([100.0] * 3, [115.0] * 3)
        assert result.significant
        assert result.direction == "increase"

    def test_decrease_direction(self):
        result = compare([100.0] * 3, [62.0] * 3)
        assert result.significant
        assert result.direction == "decrease"

    def test_large_shift_in_noisy_data_needs_statistics(self):
        """A big mean delta with huge variance is not significant."""
        baseline = [100.0, 10.0, 190.0]
        variant = [120.0, 30.0, 210.0]
        result = compare(baseline, variant)
        assert not result.significant

    def test_custom_margin(self):
        result = compare([100.0] * 3, [104.0] * 3, margin=0.10)
        assert not result.significant

    def test_zero_baseline(self):
        result = compare([0.0] * 3, [5.0] * 3)
        assert result.delta == 0.0

    @given(st.lists(finite_floats, min_size=3, max_size=10))
    def test_self_comparison_never_significant(self, samples):
        assert not compare(samples, samples).significant


class TestRelativeDelta:
    def test_basic(self):
        assert relative_delta(100.0, 115.0) == pytest.approx(0.15)
        assert relative_delta(100.0, 62.0) == pytest.approx(-0.38)

    def test_zero_baseline(self):
        assert relative_delta(0.0, 10.0) == 0.0


class TestImpactSummary:
    def test_clean_when_nothing_significant(self):
        same = compare([10.0] * 3, [10.0] * 3)
        summary = ImpactSummary(perf=same, fd=same, mem=same)
        assert summary.clean
        assert summary.describe() == "-"

    def test_flags_and_describe(self):
        perf = compare([100.0] * 3, [62.0] * 3)
        mem = compare([100.0] * 3, [117.0] * 3)
        summary = ImpactSummary(perf=perf, mem=mem)
        assert summary.flags == frozenset({"perf", "mem"})
        text = summary.describe()
        assert "perf -38%" in text
        assert "mem +17%" in text

    def test_missing_dimensions_ignored(self):
        summary = ImpactSummary()
        assert summary.clean
        assert summary.flags == frozenset()

    def test_default_margin_is_three_percent(self):
        assert DEFAULT_MARGIN == pytest.approx(0.03)
