"""Tests for the return-value check study (Figure 7)."""

import pytest

from repro.study.checks import check_rows, check_study, expected_unchecked


@pytest.fixture(scope="module")
def study(full_corpus, bench_results):
    return check_study(full_corpus, bench_results)


class TestCheckRows:
    def test_rows_cover_wrapped_app_calls_only(self, full_corpus):
        rows = {r.syscall for r in check_rows(full_corpus)}
        # futex has no glibc wrapper: excluded by construction.
        assert "futex" not in rows
        assert "read" in rows

    def test_fraction_bounds(self, full_corpus):
        for row in check_rows(full_corpus):
            assert 0 <= row.apps_checking <= row.apps_using
            assert 0.0 <= row.check_fraction <= 1.0

    def test_majority_checked(self, study):
        """Figure 7: the majority of wrappers have their result checked."""
        checked = [r for r in study.rows if r.check_fraction > 0.5]
        assert len(checked) > len(study.rows) / 2


class TestCorrelationClaim:
    def test_checking_does_not_predict_avoidability(self, study):
        """Section 5.2: the ability to stub/fake is *not* a factor of the
        presence of checks — correlation must be weak."""
        assert abs(study.correlation) < 0.45

    def test_always_checked_yet_avoidable_exist(self, study, bench_results):
        """uname/ioctl-style: always checked, commonly stubbable."""
        avoidable_somewhere = set()
        for result in bench_results:
            avoidable_somewhere |= result.avoidable_syscalls()
        overlap = set(study.always_checked) & avoidable_somewhere
        assert overlap, "expected always-checked syscalls that are avoidable"

    def test_never_checked_includes_cannot_fail(self, study):
        unchecked_and_infallible = expected_unchecked(study)
        assert "alarm" in unchecked_and_infallible or "getpid" in [
            r.syscall for r in study.rows if r.apps_checking == 0
        ] or unchecked_and_infallible

    def test_row_lookup(self, study):
        row = study.row("read")
        assert row.apps_using > 0
        with pytest.raises(KeyError):
            study.row("not_there")
