"""Tests for the minimal ELF64 reader."""

import struct

import pytest

from repro.errors import ElfFormatError
from repro.ptracer.elf import ELF_MAGIC, is_elf, parse


def _synthesize_elf(
    machine=62, sections=((".text", 0x4, b"\x90\x0f\x05"),)
) -> bytes:
    """Build a tiny but valid ELF64 with the given (name, flags, data)."""
    names = b"\x00"
    name_offsets = []
    for name, _flags, _data in sections:
        name_offsets.append(len(names))
        names += name.encode() + b"\x00"
    shstrtab_name_offset = len(names)
    names += b".shstrtab\x00"

    ehsize = 64
    shentsize = 64
    section_count = len(sections) + 2  # null + shstrtab

    payloads = []
    offset = ehsize
    for _name, _flags, data in sections:
        payloads.append((offset, data))
        offset += len(data)
    shstrtab_offset = offset
    offset += len(names)
    shoff = offset

    blob = bytearray()
    blob += b"\x7fELF" + bytes([2, 1, 1, 0]) + b"\x00" * 8
    blob += struct.pack(
        "<HHIQQQIHHHHHH",
        2, machine, 1, 0, 0, shoff, 0, ehsize, 0, 0,
        shentsize, section_count, section_count - 1,
    )
    for (payload_offset, data) in payloads:
        assert len(blob) == payload_offset
        blob += data
    blob += names

    def shdr(name_off, sh_type, flags, off, size):
        return struct.pack(
            "<IIQQQQIIQQ", name_off, sh_type, flags, 0, off, size, 0, 0, 1, 0
        )

    blob += shdr(0, 0, 0, 0, 0)  # null section
    for (name_off, (section, payload)) in zip(
        name_offsets, zip(sections, payloads)
    ):
        _name, flags, data = section
        blob += shdr(name_off, 1, flags, payload[0], len(data))
    blob += shdr(shstrtab_name_offset, 3, 0, shstrtab_offset, len(names))
    return bytes(blob)


class TestParsing:
    def test_synthetic_roundtrip(self, tmp_path):
        path = tmp_path / "tiny.elf"
        path.write_bytes(_synthesize_elf())
        elf = parse(path)
        assert elf.is_x86_64
        text = elf.section(".text")
        assert text.executable
        assert text.data == b"\x90\x0f\x05"

    def test_executable_sections_filter(self, tmp_path):
        path = tmp_path / "two.elf"
        path.write_bytes(
            _synthesize_elf(
                sections=(
                    (".text", 0x4, b"\x0f\x05"),
                    (".data", 0x0, b"DATA"),
                )
            )
        )
        elf = parse(path)
        names = [s.name for s in elf.executable_sections()]
        assert names == [".text"]

    def test_missing_section_raises(self, tmp_path):
        path = tmp_path / "tiny.elf"
        path.write_bytes(_synthesize_elf())
        with pytest.raises(ElfFormatError):
            parse(path).section(".bss")

    def test_real_system_binary(self):
        elf = parse("/bin/true")
        assert elf.is_x86_64
        assert any(s.name == ".text" for s in elf.sections)

    def test_compiled_binary(self, compiled_syscall_binary):
        elf = parse(compiled_syscall_binary)
        assert elf.executable_sections()


class TestValidation:
    def test_not_elf(self, tmp_path):
        path = tmp_path / "not.elf"
        path.write_bytes(b"#!/bin/sh\n")
        with pytest.raises(ElfFormatError):
            parse(path)
        assert not is_elf(path)

    def test_is_elf_true(self):
        assert is_elf("/bin/true")

    def test_32bit_rejected(self, tmp_path):
        blob = bytearray(_synthesize_elf())
        blob[4] = 1  # ELFCLASS32
        path = tmp_path / "e32.elf"
        path.write_bytes(bytes(blob))
        with pytest.raises(ElfFormatError):
            parse(path)

    def test_truncated_section_table(self, tmp_path):
        blob = _synthesize_elf()[:80]
        path = tmp_path / "trunc.elf"
        path.write_bytes(blob)
        with pytest.raises(ElfFormatError):
            parse(path)

    def test_is_elf_missing_file(self, tmp_path):
        assert not is_elf(tmp_path / "missing")
