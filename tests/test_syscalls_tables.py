"""Tests for the syscall knowledge base tables."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnknownSyscallError
from repro.syscalls import (
    NUMBERS_X86_64,
    SOCKETCALL_OPS,
    SYSCALLS_I386,
    SYSCALLS_X86_64,
    TABLE_I386,
    TABLE_X86_64,
    name_of,
    number_of,
)


class TestX8664Table:
    def test_well_known_numbers(self):
        assert SYSCALLS_X86_64[0] == "read"
        assert SYSCALLS_X86_64[1] == "write"
        assert SYSCALLS_X86_64[9] == "mmap"
        assert SYSCALLS_X86_64[59] == "execve"
        assert SYSCALLS_X86_64[202] == "futex"
        assert SYSCALLS_X86_64[257] == "openat"
        assert SYSCALLS_X86_64[302] == "prlimit64"
        assert SYSCALLS_X86_64[318] == "getrandom"

    def test_paper_referenced_numbers(self):
        """Every syscall number the paper's tables cite resolves."""
        cited = {
            290: "eventfd2", 273: "set_robust_list", 218: "set_tid_address",
            230: "clock_nanosleep", 283: "timerfd_create", 27: "mincore",
            186: "gettid", 33: "dup2", 105: "setuid", 128: "rt_sigtimedwait",
            99: "sysinfo", 222: "timer_create", 223: "timer_settime",
            40: "sendfile", 56: "clone", 54: "setsockopt", 47: "recvmsg",
            10: "mprotect", 25: "mremap", 8: "lseek", 21: "access",
            87: "unlink", 232: "epoll_wait", 233: "epoll_ctl",
            288: "accept4", 213: "epoll_create", 17: "pread64",
            262: "newfstatat", 291: "epoll_create1", 102: "getuid",
            104: "getgid", 107: "geteuid", 108: "getegid", 46: "sendmsg",
            53: "socketpair", 18: "pwrite64", 106: "setgid", 116: "setgroups",
            92: "chown", 130: "rt_sigsuspend", 157: "prctl", 137: "statfs",
            229: "clock_getres", 73: "flock", 131: "sigaltstack",
            95: "umask", 112: "setsid", 115: "getgroups", 293: "pipe2",
            16: "ioctl", 63: "uname", 3: "close", 98: "getrusage",
            132: "utime", 255: "inotify_rm_watch", 261: "futimesat",
            37: "alarm", 110: "getppid", 228: "clock_gettime",
            158: "arch_prctl", 12: "brk", 42: "connect", 49: "bind",
            50: "listen", 41: "socket", 20: "writev", 9: "mmap",
        }
        for number, name in cited.items():
            assert SYSCALLS_X86_64[number] == name

    def test_bijective(self):
        assert len(NUMBERS_X86_64) == len(SYSCALLS_X86_64)

    def test_size_covers_modern_kernel(self):
        # 335 legacy entries plus the 424+ block.
        assert len(SYSCALLS_X86_64) > 350

    def test_name_of_and_number_of_roundtrip(self):
        for number, name in SYSCALLS_X86_64.items():
            assert name_of(number) == name
            assert number_of(name) == number

    def test_unknown_number_raises(self):
        with pytest.raises(UnknownSyscallError):
            name_of(9999)

    def test_unknown_name_raises(self):
        with pytest.raises(UnknownSyscallError):
            number_of("not_a_syscall")

    def test_unknown_syscall_error_is_keyerror(self):
        with pytest.raises(KeyError):
            number_of("nope")


class TestI386Table:
    def test_table3_names_present(self):
        """Every i386 name in the paper's Table 3 resolves."""
        for name in (
            "_llseek", "fcntl64", "fstat64", "geteuid32", "mmap2",
            "old_mmap", "setgroups32", "set_thread_area", "stat64",
            "setuid32", "setgid32", "pread", "pwrite",
        ):
            assert name in TABLE_I386

    def test_classic_numbers(self):
        assert SYSCALLS_I386[1] == "exit"
        assert SYSCALLS_I386[11] == "execve"
        assert SYSCALLS_I386[102] == "socketcall"
        assert SYSCALLS_I386[192] == "mmap2"
        assert SYSCALLS_I386[252] == "exit_group"

    def test_socketcall_ops(self):
        assert SOCKETCALL_OPS[1] == "socket"
        assert SOCKETCALL_OPS[2] == "bind"
        assert SOCKETCALL_OPS[5] == "accept"
        assert SOCKETCALL_OPS[10] == "recv"

    def test_lookup_errors_carry_arch(self):
        with pytest.raises(UnknownSyscallError) as excinfo:
            TABLE_I386.number_of("openat2")
        assert excinfo.value.arch == "i386"


class TestSyscallTableType:
    def test_contains_name_and_number(self):
        assert "futex" in TABLE_X86_64
        assert 202 in TABLE_X86_64
        assert "no_such" not in TABLE_X86_64
        assert 99999 not in TABLE_X86_64

    def test_len_and_iter(self):
        assert len(TABLE_X86_64) == len(SYSCALLS_X86_64)
        assert set(TABLE_X86_64) == set(NUMBERS_X86_64)

    def test_names_frozenset(self):
        names = TABLE_X86_64.names()
        assert isinstance(names, frozenset)
        assert "openat" in names

    @given(st.sampled_from(sorted(NUMBERS_X86_64)))
    def test_roundtrip_property(self, name):
        assert TABLE_X86_64.name_of(TABLE_X86_64.number_of(name)) == name
