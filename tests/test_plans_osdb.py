"""Tests for the 11 OS profiles and the Table 1 calibration."""

import pytest

from repro.plans.osdb import (
    OS_NAMES,
    all_states,
    calibrated_state,
    expected_initial_apps,
    table1_states,
    tiered_state,
    unsupported_apps,
)
from repro.plans.planner import generate_plan
from repro.plans.requirements import requirements_for_all


@pytest.fixture(scope="module")
def cloud_requirements(cloud_app_set):
    return requirements_for_all(cloud_app_set, "bench")


class TestCalibratedProfiles:
    def test_paper_set_sizes(self, cloud_requirements):
        """Table 1 headers: Unikraft 174, Fuchsia 152, Kerla 58 syscalls."""
        assert len(calibrated_state("unikraft", cloud_requirements).implemented) == 174
        assert len(calibrated_state("fuchsia", cloud_requirements).implemented) == 152
        assert len(calibrated_state("kerla", cloud_requirements).implemented) == 58

    def test_initial_app_counts(self, cloud_requirements):
        """Table 1 step 0: 12 / 10 / 4 apps supported out of the box."""
        for os_name in ("unikraft", "fuchsia", "kerla"):
            state = calibrated_state(os_name, cloud_requirements)
            plan = generate_plan(state, cloud_requirements)
            assert len(plan.initially_supported) == expected_initial_apps(os_name)

    def test_step_counts_track_maturity(self, cloud_requirements):
        """Unikraft 3 steps, Fuchsia 5, Kerla 11 (Table 1)."""
        states = table1_states(cloud_requirements)
        steps = {
            name: len(generate_plan(state, cloud_requirements).steps)
            for name, state in states.items()
        }
        assert steps == {"unikraft": 3, "fuchsia": 5, "kerla": 11}

    def test_most_steps_are_small(self, cloud_requirements):
        """Section 4.1: >80% of steps implement only 1-3 syscalls."""
        states = table1_states(cloud_requirements)
        small = total = 0
        for state in states.values():
            plan = generate_plan(state, cloud_requirements)
            small += sum(1 for s in plan.steps if len(s.implement) <= 3)
            total += len(plan.steps)
        assert small / total >= 0.75

    def test_unsupported_apps_listed(self):
        assert "mongodb" in unsupported_apps("unikraft")
        assert len(unsupported_apps("kerla")) == 11

    def test_mongodb_always_last(self, cloud_requirements):
        """MongoDB is the deepest app; every plan unlocks it last."""
        for state in table1_states(cloud_requirements).values():
            plan = generate_plan(state, cloud_requirements)
            assert plan.steps[-1].app == "mongodb"


class TestTieredProfiles:
    def test_all_eleven_oses(self, cloud_requirements):
        states = all_states(cloud_requirements)
        assert len(states) == 11
        assert set(states) == set(OS_NAMES)

    def test_coverage_ordering(self, cloud_requirements):
        """More mature compatibility layers implement more syscalls."""
        linuxulator = tiered_state("linuxulator", cloud_requirements)
        nolibc = tiered_state("nolibc", cloud_requirements)
        assert len(linuxulator.implemented) > len(nolibc.implemented) * 3

    def test_tiered_plans_generate(self, cloud_requirements):
        states = all_states(cloud_requirements)
        for name in ("gvisor", "nolibc"):
            plan = generate_plan(states[name], cloud_requirements)
            assert plan.apps_supported == 15

    def test_maturity_reduces_effort(self, cloud_requirements):
        states = all_states(cloud_requirements)
        effort = {
            name: generate_plan(state, cloud_requirements).total_implemented
            for name, state in states.items()
        }
        assert effort["linuxulator"] < effort["nolibc"]
        assert effort["gvisor"] < effort["zephyr"]

    def test_expected_initial_apps_unknown_os(self):
        with pytest.raises(KeyError):
            expected_initial_apps("templeos")
