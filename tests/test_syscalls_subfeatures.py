"""Tests for vectored syscall sub-features (Section 5.4 vocabulary)."""

import pytest

from repro.errors import UnknownSyscallError
from repro.syscalls import VECTORED_SYSCALLS, decode, is_vectored, parse_qualified
from repro.syscalls.subfeatures import ARCH_PRCTL, FCNTL, IOCTL, PRLIMIT64


class TestVectoredDefinitions:
    def test_arch_prctl_has_six_operations(self):
        """Section 5.4: arch_prctl exposes 6 features, apps use 1."""
        assert len(ARCH_PRCTL.operations) == 6
        assert ARCH_PRCTL.by_name("ARCH_SET_FS").value == 0x1002

    def test_prlimit64_has_sixteen_resources(self):
        """Section 5.4: prlimit64 covers 16 resources, apps use 3."""
        assert len(PRLIMIT64.operations) == 16
        names = {op.name for op in PRLIMIT64.operations}
        assert {"RLIMIT_CORE", "RLIMIT_NOFILE", "RLIMIT_STACK"} <= names

    def test_fcntl_paper_operations(self):
        assert FCNTL.by_name("F_SETFL").value == 4
        assert FCNTL.by_name("F_SETFD").value == 2

    def test_ioctl_paper_operations(self):
        """Redis/weborf/h2o use TCGETS; Nginx uses FIONBIO+FIOASYNC."""
        assert IOCTL.by_name("TCGETS").value == 0x5401
        assert IOCTL.by_name("FIONBIO").value == 0x5421
        assert IOCTL.by_name("FIOASYNC").value == 0x5452

    def test_selector_argument_positions(self):
        assert IOCTL.selector_arg == 1       # ioctl(fd, request, ...)
        assert FCNTL.selector_arg == 1       # fcntl(fd, cmd, ...)
        assert ARCH_PRCTL.selector_arg == 0  # arch_prctl(code, addr)
        assert PRLIMIT64.selector_arg == 1   # prlimit64(pid, resource,...)


class TestDecode:
    def test_decode_known_value(self):
        sub = decode("fcntl", 4)
        assert sub is not None
        assert sub.name == "F_SETFL"
        assert sub.qualified == "fcntl:F_SETFL"

    def test_decode_unknown_value(self):
        assert decode("fcntl", 0xDEAD) is None

    def test_decode_non_vectored(self):
        assert decode("read", 0) is None

    def test_by_value(self):
        assert IOCTL.by_value(0x5401).name == "TCGETS"
        assert IOCTL.by_value(0x1234) is None

    def test_by_name_unknown_raises(self):
        with pytest.raises(UnknownSyscallError):
            FCNTL.by_name("F_NOPE")


class TestQualifiedNames:
    def test_parse_qualified(self):
        assert parse_qualified("fcntl:F_SETFL") == ("fcntl", "F_SETFL")
        assert parse_qualified("read") == ("read", None)

    def test_is_vectored(self):
        assert is_vectored("ioctl")
        assert is_vectored("mmap")
        assert not is_vectored("read")

    def test_registry_complete(self):
        assert set(VECTORED_SYSCALLS) == {
            "ioctl", "fcntl", "prctl", "arch_prctl", "prlimit64",
            "madvise", "mmap",
        }

    def test_every_operation_qualified_form(self):
        for vectored in VECTORED_SYSCALLS.values():
            for operation in vectored.operations:
                syscall, op_name = parse_qualified(operation.qualified)
                assert syscall == vectored.name
                assert op_name == operation.name
