"""Cross-module integration tests: the full pipeline end to end."""

import pytest

from repro.appsim.corpus import build, cloud_apps
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.db import Database
from repro.plans import (
    AppRequirements,
    SupportState,
    generate_plan,
    requirements_for_all,
)


class TestAnalyzeToDatabaseToPlan:
    def test_full_pipeline(self, tmp_path):
        """analyze -> persist -> reload -> derive requirements -> plan."""
        apps = [build("weborf"), build("webfsd"), build("iperf3")]
        analyzer = Analyzer(AnalyzerConfig(replicas=3))
        database = Database()
        for app in apps:
            result = analyzer.analyze(
                app.backend(), app.bench, app=app.name, app_version=app.version
            )
            database.add(result)

        path = tmp_path / "loupedb.json"
        database.save(path)
        reloaded = Database.load(path)
        assert len(reloaded) == 3

        requirements = {
            result.app: AppRequirements.from_result(result)
            for result in reloaded
        }
        plan = generate_plan(SupportState("fresh-os"), requirements)
        assert plan.apps_supported == 3
        implemented = set()
        for step in plan.steps:
            implemented |= set(step.implement)
        for record in requirements.values():
            assert record.required <= implemented

    def test_requirements_match_fresh_analysis(self):
        """The database path and the direct path agree."""
        app = build("weborf")
        analyzer = Analyzer(AnalyzerConfig(replicas=3))
        direct = analyzer.analyze(
            app.backend(), app.bench, app=app.name, app_version=app.version
        )
        roundtrip = Database.collect([direct])
        restored = next(iter(roundtrip))
        assert AppRequirements.from_result(restored) == AppRequirements.from_result(direct)


class TestWorkloadHierarchy:
    def test_health_bench_suite_requirements_nest_upward(self, cloud_app_set):
        """Stronger workloads can only add requirements (Section 3.2:
        workloads are levels of guarantee)."""
        from repro.study.base import analyze_app

        for app in cloud_app_set[:6]:
            health = analyze_app(app, "health").required_syscalls()
            suite = analyze_app(app, "suite").required_syscalls()
            # Everything required for a health check is required for
            # the suite: the suite exercises at least 'core'.
            assert health <= suite


class TestSubfeatureIntegration:
    def test_partial_analysis_of_redis(self):
        from repro.core.partial import summarize

        app = build("redis")
        config = AnalyzerConfig(replicas=3, subfeature_level=True)
        result = Analyzer(config).analyze(app.backend(), app.bench)
        summaries = summarize(result)
        # Section 5.4: fcntl mixes required (F_SETFL) and stubbable
        # (F_SETFD) operations in one syscall.
        assert "fcntl" in summaries
        fcntl = summaries["fcntl"]
        assert "F_SETFL" in fcntl.required
        assert "F_SETFD" in fcntl.stubbable
        # prlimit64: only RLIMIT_* subset used, none required.
        prlimit = summaries["prlimit64"]
        assert prlimit.used_fraction < 0.5

    def test_pseudofile_analysis_of_redis(self):
        app = build("redis")
        config = AnalyzerConfig(replicas=3, pseudo_files=True)
        result = Analyzer(config).analyze(app.backend(), app.bench)
        assert "/dev/urandom" in result.pseudo_files()
        assert result.features["/dev/urandom"].decision.avoidable


class TestElevenOsPlans:
    def test_all_oses_reach_full_support(self, cloud_app_set):
        from repro.plans import all_states

        requirements = requirements_for_all(cloud_app_set, "bench")
        for os_name, state in all_states(requirements).items():
            plan = generate_plan(state, requirements)
            assert plan.apps_supported == 15, os_name
