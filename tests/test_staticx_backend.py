"""Tests for the ``static`` pseudo-backend (repro.staticx.backend)."""

import pytest

from repro.api.registry import (
    BackendResolutionError,
    create_target,
    resolve_backend,
)
from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import build
from repro.core.policy import combined, passthrough
from repro.core.runner import capabilities_of
from repro.staticx import StaticBackend
from repro.study.base import static_result


class TestStaticBackend:
    def test_run_reports_the_footprint(self):
        app = build("weborf")
        backend = StaticBackend(app.program, level="binary")
        result = backend.run(app.workload("health"), passthrough())
        assert result.success
        assert result.syscalls() == app.program.static_view("binary")

    def test_source_level_is_the_smaller_view(self):
        app = build("redis")
        source = StaticBackend(app.program, level="source")
        binary = StaticBackend(app.program, level="binary")
        workload = app.workload("health")
        observed_source = source.run(workload, passthrough()).syscalls()
        observed_binary = binary.run(workload, passthrough()).syscalls()
        assert observed_source < observed_binary

    def test_stubbing_any_footprint_syscall_fails_the_run(self):
        app = build("weborf")
        backend = StaticBackend(app.program, level="binary")
        syscall = sorted(app.program.static_view("binary"))[0]
        result = backend.run(
            app.workload("health"), combined(stubs=[syscall])
        )
        assert not result.success
        assert syscall in result.failure_reason

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            StaticBackend(build("weborf").program, level="quantum")

    def test_capability_contract(self):
        caps = capabilities_of(StaticBackend(build("weborf").program))
        assert caps.deterministic
        assert caps.parallel_safe
        assert caps.process_safe
        assert caps.static_analysis
        assert not caps.real_execution
        assert not caps.supports_pseudo_files
        assert not caps.supports_subfeatures


class TestRegistry:
    def test_static_names_resolve(self):
        for name in ("static", "static:source", "static:binary"):
            assert resolve_backend(name) is not None

    def test_unqualified_static_is_binary_level(self):
        request = AnalysisRequest(app="weborf", workload="health")
        target = create_target(("static",), request)
        assert target.backend.level == "binary"
        assert target.app == "weborf"

    def test_unknown_app_rejected_with_choices(self):
        request = AnalysisRequest(app="doom", workload="health")
        with pytest.raises(BackendResolutionError, match="redis"):
            create_target(("static",), request)

    def test_unknown_workload_rejected_with_choices(self):
        request = AnalysisRequest(app="weborf", workload="nope")
        with pytest.raises(BackendResolutionError, match="health"):
            create_target(("static",), request)


class TestAnalysis:
    def test_analysis_concludes_required_equals_footprint(self):
        app = build("weborf")
        result = LoupeSession().analyze(AnalysisRequest(
            app="weborf", workload="health", backend="static"
        ))
        footprint = app.program.static_view("binary")
        assert result.traced_syscalls() == footprint
        assert result.required_syscalls() == footprint
        assert not result.stubbable_syscalls()
        assert not result.fakeable_syscalls()
        assert result.final_run_ok

    def test_static_result_helper_matches_direct_views(self):
        app = build("lighttpd")
        for level in ("source", "binary"):
            result = static_result(app, "bench", level)
            assert (
                result.required_syscalls()
                == app.program.static_view(level)
            )

    def test_static_result_falls_back_for_unregistered_models(self):
        from repro.appsim.corpus import _synthetic_app

        app = _synthetic_app(3)
        result = static_result(app, "bench", "source")
        assert result.required_syscalls() == app.program.static_view("source")


class TestCompare:
    def test_static_vs_appsim_report(self):
        report = LoupeSession().compare(AnalysisRequest(
            app="weborf", workload="health", backend="static,appsim"
        ))
        # The dynamic leg is the reference even though the spec lists
        # the static leg first: footprints make a poor reference.
        assert report.reference == "appsim"
        counts = report.divergence_counts()
        assert "static-overapproximation" in counts
        assert report.soundness_violations() == ()
        observations = {obs.target: obs for obs in report.observations}
        assert observations["static"].static_analysis
        assert not observations["appsim"].static_analysis
        # Soundness: every dynamically observed syscall is in the
        # static footprint, so the only divergences are the expected
        # over-approximation direction.
        assert set(counts) == {"static-overapproximation"}

    def test_source_vs_binary_footprints_compare_setwise(self):
        report = LoupeSession().compare(AnalysisRequest(
            app="redis", workload="health",
            backend="static:source,static:binary",
        ))
        counts = report.divergence_counts()
        # binary ⊇ source, so the only difference is extra footprint
        # entries on the non-reference (binary) side.
        assert set(counts) == {"extra-in-sim"}
