"""Tests for partial-implementation (vectored syscall) analysis."""

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, harmless, ignore
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.partial import summarize
from repro.core.workload import health_check


def _vectored_program():
    """fcntl mixing a required and an always-stubbable operation, plus
    an arch_prctl that only ever uses ARCH_SET_FS (Section 5.4)."""
    ops = (
        SyscallOp(
            syscall="arch_prctl", subfeature="ARCH_SET_FS",
            on_stub=abort(), on_fake=breaks_core(),
        ),
        SyscallOp(
            syscall="fcntl", subfeature="F_SETFL",
            on_stub=abort(), on_fake=breaks_core(),
        ),
        SyscallOp(
            syscall="fcntl", subfeature="F_SETFD",
            on_stub=ignore(), on_fake=harmless(),
        ),
        SyscallOp(
            syscall="prlimit64", subfeature="RLIMIT_NOFILE",
            on_stub=ignore(), on_fake=harmless(),
        ),
    )
    return SimProgram(
        name="vectored-demo",
        version="1",
        ops=ops,
        profiles={"*": WorkloadProfile()},
    )


class TestSubfeatureAnalysis:
    def test_subfeature_level_reports(self):
        config = AnalyzerConfig(subfeature_level=True)
        result = Analyzer(config).analyze(
            SimBackend(_vectored_program()), health_check("health")
        )
        assert "fcntl:F_SETFL" in result.features
        assert "fcntl:F_SETFD" in result.features
        assert result.features["fcntl:F_SETFL"].decision.required
        assert result.features["fcntl:F_SETFD"].decision.avoidable

    def test_whole_syscall_level_merges(self):
        """At whole-syscall granularity, mixed fcntl appears required —
        the situation looking 'worse than it is' per Section 5.4."""
        result = Analyzer(AnalyzerConfig(subfeature_level=False)).analyze(
            SimBackend(_vectored_program()), health_check("health")
        )
        assert "fcntl" in result.required_syscalls()
        assert "fcntl:F_SETFL" not in result.features

    def test_summaries(self):
        config = AnalyzerConfig(subfeature_level=True)
        result = Analyzer(config).analyze(
            SimBackend(_vectored_program()), health_check("health")
        )
        summaries = summarize(result)
        arch = summaries["arch_prctl"]
        assert arch.total_operations == 6
        assert arch.used == ("ARCH_SET_FS",)
        assert arch.required == ("ARCH_SET_FS",)
        assert arch.used_fraction < 0.2
        fcntl = summaries["fcntl"]
        assert fcntl.required == ("F_SETFL",)
        assert "F_SETFD" in fcntl.stubbable
        assert not fcntl.fully_avoidable
        prlimit = summaries["prlimit64"]
        assert prlimit.fully_avoidable
        assert prlimit.required_fraction == 0.0

    def test_summarize_without_subfeatures_is_empty(self):
        result = Analyzer(AnalyzerConfig(subfeature_level=False)).analyze(
            SimBackend(_vectored_program()), health_check("health")
        )
        assert summarize(result) == {}
