"""Tests for the Figure 2 engineering-effort study."""

import pytest

from repro.appsim.corpus import corpus
from repro.plans.effort import (
    EffortCurve,
    naive_curve,
    organic_curve,
    run_effort_study,
    synthesize_chronology,
)
from repro.plans.requirements import AppRequirements


@pytest.fixture(scope="module")
def study():
    return run_effort_study(corpus()[:62])


class TestCurveMechanics:
    def test_curve_lookup(self):
        curve = EffortCurve("x", points=((0, 0), (10, 1), (25, 2)))
        assert curve.syscalls_for_apps(1) == 10
        assert curve.syscalls_for_apps(2) == 25
        assert curve.syscalls_for_apps(99) == 25

    def test_ordered_curves_monotone(self):
        records = [
            AppRequirements(
                app=f"a{i}", workload="bench",
                required=frozenset({"read", "write"} | {f"close" if i else "brk"}),
                stubbable=frozenset(), fake_only=frozenset(),
                traced=frozenset({"read", "write", "close", "brk"}),
            )
            for i in range(3)
        ]
        organic = organic_curve(records)
        xs = [p[0] for p in organic.points]
        assert xs == sorted(xs)
        naive = naive_curve(records)
        assert naive.final_syscalls >= organic.final_syscalls


class TestChronology:
    def test_deterministic(self):
        apps = corpus()[:30]
        first = [a.name for a in synthesize_chronology(apps)]
        second = [a.name for a in synthesize_chronology(apps)]
        assert first == second

    def test_different_seed_changes_order(self):
        apps = corpus()[:30]
        a = [x.name for x in synthesize_chronology(apps, seed=1)]
        b = [x.name for x in synthesize_chronology(apps, seed=2)]
        assert a != b

    def test_permutation(self):
        apps = corpus()[:30]
        ordered = synthesize_chronology(apps)
        assert sorted(a.name for a in ordered) == sorted(a.name for a in apps)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            synthesize_chronology(corpus()[:5], mode="lunar")

    def test_last_commit_mode_perturbs_not_reshuffles(self):
        apps = corpus()[:40]
        creation = [a.name for a in synthesize_chronology(apps)]
        last_commit = [
            a.name for a in synthesize_chronology(apps, mode="last-commit")
        ]
        assert creation != last_commit
        # Orders stay correlated: most apps move only a few positions.
        displacement = [
            abs(creation.index(name) - last_commit.index(name))
            for name in creation
        ]
        assert sum(displacement) / len(displacement) < len(apps) / 4


class TestAlternativeChronologyRobustness:
    def test_results_similar_under_last_commit_dates(self):
        """Section 4.2: 'We repeated the study using the date of the
        last commit ... results were similar.'"""
        apps = corpus()[:62]
        creation = run_effort_study(apps)
        last_commit = run_effort_study(apps, chronology_mode="last-commit")
        a = creation.at_half()
        b = last_commit.at_half()
        # Loupe/naive are order-independent in what they imply here;
        # the organic estimate is the one that could move, and it must
        # stay in the same ballpark.
        assert b["loupe"] == a["loupe"]
        assert abs(b["organic"] - a["organic"]) <= a["organic"] * 0.25
        assert a["loupe"] < b["organic"] < a["naive"] * 1.1


class TestPaperShape:
    def test_ordering_at_half(self, study):
        """Figure 2's headline ordering: Loupe < organic < naive."""
        half = study.at_half()
        assert half["loupe"] < half["organic"] < half["naive"]

    def test_loupe_saves_substantially(self, study):
        """Paper: 37 vs 92 — Loupe needs far fewer syscalls than organic."""
        half = study.at_half()
        assert half["organic"] >= half["loupe"] * 1.6

    def test_naive_wastes_substantially(self, study):
        """Paper: 142 vs 92 — no stubbing/faking costs even more."""
        half = study.at_half()
        assert half["naive"] >= half["organic"] * 1.3

    def test_loupe_and_organic_converge(self, study):
        """All 62 apps supported -> same required union either way."""
        assert study.loupe.final_syscalls == study.organic.final_syscalls
        assert study.loupe.final_apps == study.organic.final_apps == 62

    def test_naive_final_is_traced_union(self, study):
        assert study.naive.final_syscalls > study.loupe.final_syscalls

    def test_loupe_curve_dominates_organic(self, study):
        """At every app count, the Loupe plan needs <= the organic cost."""
        for apps in range(1, 63):
            assert (
                study.loupe.syscalls_for_apps(apps)
                <= study.organic.syscalls_for_apps(apps)
            )
