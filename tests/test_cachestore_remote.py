"""The HTTP run-cache backend and its server-side cache surface.

Covers the wire store (:class:`RemoteRunCache` against a live
:class:`CampaignServer`), the fleet-wide single-flight claim protocol
(each cold key executes once per claim window no matter how many
clients stampede it), TTL expiry on the local backends that the
served store builds on, and the in-process
:class:`SingleFlightStore` / :class:`CacheService` primitives.
"""

from __future__ import annotations

import threading
import time
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.cachestore import (
    CacheStoreError,
    RemoteRunCache,
    SingleFlightStore,
    open_store,
)
from repro.core.cachestore.factory import parse_store_path, store_identity
from repro.core.cachestore.remote import decode_key_id, encode_key_id
from repro.core.runner import RunResult
from repro.server import CampaignServer
from repro.server.cache import CacheService, FleetTracker

KEY = ("sim:redis-1.0", "bench", "fingerprint", 0)


def _result(reads: int = 3) -> RunResult:
    return RunResult(success=True, traced=Counter({"read": reads}))


@pytest.fixture
def cache_server(tmp_path):
    with CampaignServer(
        tmp_path / "svc", workers=1,
        run_cache=str(tmp_path / "cache.sqlite"),
    ) as server:
        yield server


# -- key ids -----------------------------------------------------------------


class TestKeyIds:
    @settings(max_examples=50, deadline=None)
    @given(
        backend=st.text(max_size=40),
        workload=st.text(max_size=40),
        fingerprint=st.text(max_size=40),
        replica=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_round_trip(self, backend, workload, fingerprint, replica):
        key = (backend, workload, fingerprint, replica)
        token = encode_key_id(key)
        assert "/" not in token and "+" not in token and "=" not in token
        assert decode_key_id(token) == key

    def test_garbage_is_refused(self):
        for junk in ("%%%", "bm90LWpzb24", encode_key_id(KEY)[:-4] + "AAAA"):
            with pytest.raises(ValueError):
                decode_key_id(junk)


# -- the wire store ----------------------------------------------------------


class TestRemoteRoundTrip:
    def test_put_get_len_stats(self, cache_server):
        with RemoteRunCache(cache_server.url) as store:
            assert store.get(KEY) is None
            store.put(KEY, _result(), policy={"mode": "stub"})
            hit = store.get(KEY)
            assert hit is not None
            assert hit.to_dict() == _result().to_dict()
            assert len(store) == 1
            stats = store.stats()
            assert stats.kind == "sqlite"
            assert stats.entries == 1

    def test_get_many_is_a_plain_batched_read(self, cache_server):
        other = ("sim:redis-1.0", "bench", "fingerprint", 1)
        with RemoteRunCache(cache_server.url) as store:
            store.put(KEY, _result())
            found = store.get_many([KEY, other])
            assert set(found) == {KEY}
            assert found[KEY].to_dict() == _result().to_dict()
            assert store.get_many([]) == {}

    def test_ops_verbs_point_at_the_server_file(self, cache_server):
        with RemoteRunCache(cache_server.url) as store:
            for operation in (
                store.items, store.records, store.compact, store.gc,
                store.expired,
            ):
                with pytest.raises(CacheStoreError, match="loupe cache"):
                    operation()

    def test_open_store_dispatches_http(self, cache_server):
        with open_store(cache_server.url) as store:
            assert isinstance(store, RemoteRunCache)
            assert store.kind == "http"

    def test_server_without_cache_surface_is_actionable(self, tmp_path):
        with CampaignServer(tmp_path / "svc", workers=1) as server:
            with pytest.raises(CacheStoreError, match="--run-cache"):
                RemoteRunCache(server.url)

    def test_dead_server_is_actionable_at_open(self):
        with pytest.raises(CacheStoreError, match="is it running"):
            open_store("http://127.0.0.1:1")

    def test_local_knobs_are_refused_on_http(self, cache_server):
        for knobs in ({"max_entries": 5}, {"ttl_s": 60.0}):
            with pytest.raises(CacheStoreError, match="loupe serve"):
                open_store(cache_server.url, **knobs)

    def test_parse_and_identity(self):
        kind, _path = parse_store_path("http://localhost:80")
        assert kind == "http"
        assert store_identity("http://h:1/") == store_identity("http://h:1")
        assert store_identity("http://h:1") != store_identity("http://h:2")


class TestFleetSingleFlight:
    def test_stampede_executes_exactly_once(self, cache_server):
        executions = []
        results = []
        barrier = threading.Barrier(4)

        def contender():
            store = RemoteRunCache(cache_server.url, claim_wait_s=10.0)
            barrier.wait()
            hit = store.get(KEY)
            if hit is None:
                executions.append(threading.current_thread().name)
                store.put(KEY, _result())
                hit = _result()
            results.append(hit.to_dict())

        threads = [
            threading.Thread(target=contender) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert len(executions) == 1
        assert results == [_result().to_dict()] * 4
        counters = cache_server.cache.counters()
        assert counters["claims_granted"] == 1
        assert counters["coalesced"] >= 1
        assert counters["claims_open"] == 0

    def test_claimless_client_never_blocks(self, cache_server):
        # claim=False makes every get a plain read: an immediate miss
        # even while another client holds the key's claim.
        holder = RemoteRunCache(cache_server.url)
        assert holder.get(KEY) is None  # takes the claim
        reader = RemoteRunCache(cache_server.url, claim=False)
        started = time.monotonic()
        assert reader.get(KEY) is None
        assert time.monotonic() - started < 5.0


# -- TTL on the local backends ----------------------------------------------


@pytest.mark.parametrize("suffix", ["runs.jsonl", "runs.sqlite"])
class TestTTLExpiry:
    def test_expiry_gc_and_revive(self, tmp_path, suffix):
        path = tmp_path / suffix
        with open_store(path, ttl_s=0.05) as store:
            store.put(KEY, _result())
            assert store.get(KEY) is not None
            time.sleep(0.1)
            # Reads treat the stale record as a miss immediately…
            assert store.get(KEY) is None
            assert store.expired() == 1
            stats = store.stats()
            assert stats.ttl_s == 0.05
            assert stats.expired == 1
            # …and a gc sweep reclaims it.
            assert store.gc() == 1
            assert len(store) == 0
            # A fresh put after expiry revives the key.
            store.put(KEY, _result())
            assert store.get(KEY) is not None

    def test_ad_hoc_ttl_on_untimed_store(self, tmp_path, suffix):
        path = tmp_path / suffix
        with open_store(path) as store:
            store.put(KEY, _result())
            time.sleep(0.05)
            # No configured TTL: the record never expires on read…
            assert store.get(KEY) is not None
            assert store.stats().expired == 0
            # …but ops may ask with an explicit horizon.
            assert store.expired(0.01) == 1
            assert store.expired(3600.0) == 0
            assert store.gc(ttl_s=0.01) == 1
            assert len(store) == 0


class TestTTLCli:
    def _warm(self, path):
        with open_store(path) as store:
            store.put(KEY, _result())

    def test_stats_ttl_reports_expired(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        time.sleep(0.05)
        assert main(["cache", "stats", path, "--ttl", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "expired: 1" in out

    def test_gc_ttl_sweeps_both_backends(self, tmp_path, capsys):
        for suffix in ("runs.jsonl", "runs.sqlite"):
            path = str(tmp_path / suffix)
            self._warm(path)
            time.sleep(0.05)
            assert main(["cache", "gc", path, "--ttl", "0.01"]) == 0
            assert "evicted 1" in capsys.readouterr().out
            with open_store(path) as store:
                assert len(store) == 0

    def test_gc_needs_a_bound(self, tmp_path, capsys):
        path = str(tmp_path / "runs.sqlite")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "gc", path]) == 2
        assert "--ttl" in capsys.readouterr().err


# -- in-process primitives ---------------------------------------------------


class TestSingleFlightStore:
    def test_claim_then_publish_coalesces_waiters(self, tmp_path):
        inner = open_store(tmp_path / "runs.jsonl")
        with SingleFlightStore(inner) as store:
            assert store.get(KEY) is None  # the claim is ours
            assert store.claims_granted == 1
            seen = []

            def waiter():
                seen.append(store.get(KEY))

            thread = threading.Thread(target=waiter)
            thread.start()
            time.sleep(0.05)
            store.put(KEY, _result())
            thread.join(timeout=10.0)
            assert seen and seen[0].to_dict() == _result().to_dict()
            assert store.coalesced == 1

    def test_expired_lease_transfers_the_claim(self, tmp_path):
        inner = open_store(tmp_path / "runs.jsonl")
        with SingleFlightStore(inner, lease_s=0.05) as store:
            assert store.get(KEY) is None
            time.sleep(0.1)
            # The holder never published; the next miss inherits.
            assert store.get(KEY) is None
            assert store.claims_granted == 2

    def test_close_wakes_waiters(self, tmp_path):
        inner = open_store(tmp_path / "runs.jsonl")
        store = SingleFlightStore(inner, lease_s=30.0)
        assert store.get(KEY) is None
        finished = threading.Event()

        def waiter():
            store.get(KEY)
            finished.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.05)
        store.close()
        assert finished.wait(5.0)


class TestCacheServiceUnit:
    def test_claim_grant_and_publish(self, tmp_path):
        service = CacheService(open_store(tmp_path / "runs.jsonl"))
        try:
            result, claimed = service.fetch(KEY, claim=True)
            assert result is None and claimed
            # A zero-budget waiter gets a plain miss, not the claim.
            result, claimed = service.fetch(KEY, claim=True, wait_s=0.0)
            assert result is None and not claimed
            service.publish(KEY, _result())
            result, claimed = service.fetch(KEY, claim=True)
            assert result is not None and not claimed
            counters = service.counters()
            assert counters["hits"] == 1
            assert counters["misses"] == 2
            assert counters["claims_granted"] == 1
            assert counters["claims_open"] == 0
        finally:
            service.close()

    def test_expired_claim_transfers(self, tmp_path):
        service = CacheService(
            open_store(tmp_path / "runs.jsonl"), lease_s=0.05
        )
        try:
            assert service.fetch(KEY, claim=True) == (None, True)
            time.sleep(0.1)
            assert service.fetch(KEY, claim=True) == (None, True)
            assert service.counters()["claims_granted"] == 2
        finally:
            service.close()

    def test_lookup_is_claimless(self, tmp_path):
        service = CacheService(open_store(tmp_path / "runs.jsonl"))
        try:
            service.publish(KEY, _result())
            found = service.lookup([KEY, ("b", "w", "f", 9)])
            assert set(found) == {KEY}
        finally:
            service.close()


class TestFleetTracker:
    def test_heartbeats_feed_gauges_and_age_out(self):
        tracker = FleetTracker()
        assert tracker.gauges() == {"workers": 0, "chunks_in_flight": 0}
        ack = tracker.heartbeat({
            "worker_id": "w-1", "chunks_in_flight": 2, "ttl_s": 0.05,
        })
        assert ack == {"ok": True, "worker_id": "w-1"}
        tracker.heartbeat({
            "worker_id": "w-2", "chunks_in_flight": 1, "ttl_s": 30.0,
        })
        assert tracker.gauges() == {"workers": 2, "chunks_in_flight": 3}
        time.sleep(0.1)
        # w-1's TTL lapsed: it vanishes without any deregistration.
        assert tracker.gauges() == {"workers": 1, "chunks_in_flight": 1}

    def test_malformed_heartbeats_are_refused(self):
        tracker = FleetTracker()
        for document in (
            None, [], {}, {"worker_id": ""},
            {"worker_id": "w", "ttl_s": 0},
            {"worker_id": "w", "ttl_s": "soon"},
            {"worker_id": "w", "chunks_in_flight": "many"},
        ):
            with pytest.raises(ValueError):
                tracker.heartbeat(document)
