"""Tests for the analysis result model and its JSON round-trip."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.decisions import Decision, Verdict
from repro.core.metrics import ImpactSummary, SampleStats, compare
from repro.core.result import AnalysisResult, BaselineStats, FeatureReport
from repro.core.workload import WorkloadKind


def _report(feature, can_stub=False, can_fake=False, count=3, notes=()):
    return FeatureReport(
        feature=feature,
        traced_count=count,
        decision=Decision(can_stub=can_stub, can_fake=can_fake),
        notes=tuple(notes),
    )


def _result(features):
    return AnalysisResult(
        app="demo",
        app_version="1.0",
        workload="bench",
        workload_kind=WorkloadKind.BENCHMARK,
        backend="sim:demo-1.0",
        replicas=3,
        features={r.feature: r for r in features},
        baseline=BaselineStats(
            metric=SampleStats.of([100.0, 101.0, 99.0]),
            fd=SampleStats.of([10.0] * 3),
            mem=SampleStats.of([2048.0] * 3),
        ),
    )


class TestFeatureReport:
    def test_verdict_mirrors_decision(self):
        assert _report("read").verdict is Verdict.REQUIRED
        assert _report("close", can_stub=True).verdict is Verdict.STUB_ONLY

    def test_kind_detection(self):
        assert _report("/dev/urandom").is_pseudofile
        assert _report("fcntl:F_SETFL").is_subfeature
        plain = _report("read")
        assert not plain.is_pseudofile and not plain.is_subfeature

    def test_syscall_accessor(self):
        assert _report("fcntl:F_SETFL").syscall == "fcntl"
        assert _report("read").syscall == "read"
        assert _report("/proc/meminfo").syscall == ""

    def test_metric_impact_flag(self):
        shifted = ImpactSummary(perf=compare([100.0] * 3, [62.0] * 3))
        report = FeatureReport(
            feature="rt_sigsuspend",
            traced_count=2,
            decision=Decision(True, True),
            stub_impact=shifted,
        )
        assert report.has_metric_impact
        assert not _report("read").has_metric_impact


class TestResultViews:
    def test_set_views_partition_traced(self):
        result = _result(
            [
                _report("read"),
                _report("close", can_stub=True, can_fake=True),
                _report("brk", can_stub=True),
                _report("prctl", can_fake=True),
            ]
        )
        traced = result.traced_syscalls()
        assert traced == {"read", "close", "brk", "prctl"}
        assert result.required_syscalls() == {"read"}
        assert result.stubbable_syscalls() == {"close", "brk"}
        assert result.fakeable_syscalls() == {"close", "prctl"}
        assert result.avoidable_syscalls() == traced - {"read"}

    def test_subfeatures_and_pseudofiles_excluded_from_syscall_views(self):
        result = _result(
            [
                _report("fcntl"),
                _report("fcntl:F_SETFD", can_stub=True),
                _report("/dev/urandom", can_stub=True),
            ]
        )
        assert result.traced_syscalls() == {"fcntl"}
        assert result.pseudo_files() == {"/dev/urandom"}
        assert [r.feature for r in result.subfeature_reports()] == ["fcntl:F_SETFD"]


class TestSerialization:
    def test_roundtrip_simple(self):
        result = _result(
            [
                _report("read"),
                _report("close", can_stub=True, notes=["leaks descriptors"]),
            ]
        )
        restored = AnalysisResult.from_dict(result.to_dict())
        assert restored.app == result.app
        assert restored.required_syscalls() == result.required_syscalls()
        assert restored.features["close"].notes == ("leaks descriptors",)
        assert restored.workload_kind is WorkloadKind.BENCHMARK

    def test_roundtrip_with_impacts_and_conflicts(self):
        impact = ImpactSummary(
            perf=compare([100.0] * 3, [62.0] * 3),
            fd=compare([10.0] * 3, [80.0] * 3),
        )
        report = FeatureReport(
            feature="futex",
            traced_count=48,
            decision=Decision(False, True),
            fake_impact=impact,
        )
        result = AnalysisResult(
            app="redis",
            app_version="6.2",
            workload="bench",
            workload_kind=WorkloadKind.BENCHMARK,
            backend="sim:redis-6.2",
            replicas=3,
            features={"futex": report},
            baseline=BaselineStats(
                metric=SampleStats.of([1.0]),
                fd=SampleStats.of([1.0]),
                mem=SampleStats.of([1.0]),
            ),
            final_run_ok=False,
            conflicts=(("futex", "close"),),
        )
        restored = AnalysisResult.from_dict(result.to_dict())
        assert restored.conflicts == (("futex", "close"),)
        assert not restored.final_run_ok
        fake_impact = restored.features["futex"].fake_impact
        assert fake_impact is not None
        assert fake_impact.perf.significant
        assert fake_impact.perf.delta == result.features[
            "futex"
        ].fake_impact.perf.delta

    @given(
        st.dictionaries(
            st.sampled_from(["read", "write", "futex", "brk", "close"]),
            st.tuples(st.booleans(), st.booleans(), st.integers(1, 100)),
            max_size=5,
        )
    )
    def test_roundtrip_property(self, spec):
        features = [
            _report(name, can_stub=stub, can_fake=fake, count=count)
            for name, (stub, fake, count) in spec.items()
        ]
        result = _result(features)
        restored = AnalysisResult.from_dict(result.to_dict())
        assert restored.to_dict() == result.to_dict()
