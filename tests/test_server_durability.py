"""Tests for the campaign server's durability substrate: leases and
heartbeats, the reaper, checkpoint/resume, poison-job quarantine,
torn-metadata recovery, admission control, drain mode, and the
client's transient-retry behavior."""

import dataclasses
import json
import math
import shutil
import threading
import time

import pytest

from repro.api.registry import (
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.api.session import LoupeSession
from repro.errors import ServiceUnavailableError
from repro.server import (
    CANCELLED,
    DONE,
    QUARANTINED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    CampaignServer,
    JobRunner,
    JobSpec,
    JobStateError,
    JobStore,
    QueueFullError,
    ServerDrainingError,
    ServiceClient,
    ServiceError,
    TornMetaError,
)
from repro.cli import main

DEADLINE_S = 30.0

QUICK_SPEC = {"app": "weborf", "workload": "health", "replicas": 1}
SLOW_SPEC = {**QUICK_SPEC, "backend": "slowsim"}


def _wait_until(predicate, *, timeout=DEADLINE_S, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(interval)
    raise AssertionError("condition not reached within deadline")


class _SlowBackend:
    def __init__(self, inner, delay_s):
        self.inner = inner
        self.delay_s = delay_s
        self.name = getattr(inner, "name", "slow")
        self.deterministic = getattr(inner, "deterministic", False)

    def capabilities(self):
        from repro.core.runner import capabilities_of

        return capabilities_of(self.inner)

    def run(self, workload, policy, *, replica=0):
        time.sleep(self.delay_s)
        return self.inner.run(workload, policy, replica=replica)


@pytest.fixture
def slow_backend_name():
    def factory(request):
        target = resolve_backend("appsim")(request)
        return dataclasses.replace(
            target, backend=_SlowBackend(target.backend, 0.05)
        )

    register_backend("slowsim", factory, replace=True)
    yield "slowsim"
    unregister_backend("slowsim")


def _events(store, job_id):
    lines, _ = store.read_events(job_id)
    return [json.loads(line) for line in lines]


class TestLeases:
    def test_running_job_holds_a_lease(self, tmp_path, slow_backend_name):
        with CampaignServer(tmp_path / "svc", workers=1) as server:
            client = ServiceClient(server.url)
            meta = client.submit(SLOW_SPEC)
            running = _wait_until(lambda: (
                client.job(meta["id"])["status"] == RUNNING
                and client.job(meta["id"])
            ))
            assert running["lease_owner"]
            assert running["lease_deadline"] > time.time()
            assert running["heartbeat_at"] is not None
            assert running["attempt"] == 1
            client.cancel(meta["id"])

    def test_heartbeats_refresh_at_wave_boundaries(
        self, tmp_path, slow_backend_name
    ):
        # A short lease forces the heartbeat throttle low, so wave
        # boundaries of the slowed backend visibly push the deadline.
        with CampaignServer(
            tmp_path / "svc", workers=1, lease_s=0.5,
            reaper_interval_s=3600.0,
        ) as server:
            client = ServiceClient(server.url)
            meta = client.submit(SLOW_SPEC)
            first = _wait_until(lambda: (
                client.job(meta["id"])["status"] == RUNNING
                and client.job(meta["id"])
            ))
            second = _wait_until(lambda: (
                client.job(meta["id"])["heartbeat_at"]
                > first["heartbeat_at"]
                and client.job(meta["id"])
            ))
            assert second["lease_deadline"] > first["lease_deadline"]
            client.cancel(meta["id"])

    def test_heartbeat_refused_for_stale_owner(self, tmp_path):
        store = JobStore(tmp_path)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(meta.id, RUNNING, owner="w1", lease_s=30.0)
        assert store.heartbeat(meta.id, "w1", 30.0) is True
        assert store.heartbeat(meta.id, "other", 30.0) is False
        store.transition(meta.id, QUEUED, bump_attempt=True)
        assert store.heartbeat(meta.id, "w1", 30.0) is False

    def test_stale_owner_cannot_commit_an_outcome(self, tmp_path):
        store = JobStore(tmp_path)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(meta.id, RUNNING, owner="w1", lease_s=30.0)
        # The reaper hands the job to a new attempt...
        store.transition(meta.id, QUEUED, bump_attempt=True)
        # ...so the old worker's terminal report must be refused, even
        # though queued → cancelled is a legal edge in general.
        with pytest.raises(JobStateError):
            store.transition(meta.id, DONE, owner="w1")
        with pytest.raises(JobStateError):
            store.transition(meta.id, CANCELLED, owner="w1")
        assert store.meta(meta.id).status == QUEUED
        assert store.meta(meta.id).attempt == 2


class TestReaper:
    def _expired_running_job(self, store, attempt=1):
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        for lost in range(1, attempt):
            store.transition(meta.id, RUNNING, owner="dead", lease_s=0.001)
            store.transition(
                meta.id, QUEUED, bump_attempt=True,
                history_event={
                    "attempt": lost, "outcome": "lease-expired",
                    "owner": "dead",
                },
            )
        store.transition(meta.id, RUNNING, owner="dead", lease_s=0.001)
        time.sleep(0.01)
        return meta.id

    def test_expired_lease_is_reclaimed(self, tmp_path):
        store = JobStore(tmp_path)
        runner = JobRunner(store, workers=1, max_attempts=3)
        job_id = self._expired_running_job(store)
        reclaimed = runner.reap()
        assert [m.id for m in reclaimed] == [job_id]
        meta = store.meta(job_id)
        assert meta.status == QUEUED
        assert meta.attempt == 2
        assert meta.lease_owner == ""
        assert meta.history[-1]["outcome"] == "lease-expired"
        assert meta.history[-1]["owner"] == "dead"
        kinds = [doc["event"] for doc in _events(store, job_id)]
        assert "job_requeued" in kinds

    def test_exhausted_attempts_are_quarantined(self, tmp_path):
        store = JobStore(tmp_path)
        runner = JobRunner(store, workers=1, max_attempts=2)
        job_id = self._expired_running_job(store, attempt=2)
        runner.reap()
        meta = store.meta(job_id)
        assert meta.status == QUARANTINED
        assert "attempt budget exhausted" in meta.reason
        # Full fault history: one record per lost attempt.
        assert [entry["outcome"] for entry in meta.history] == [
            "lease-expired", "lease-expired",
        ]
        kinds = [doc["event"] for doc in _events(store, job_id)]
        assert "job_quarantined" in kinds
        # Terminal: the reaper never touches it again.
        assert runner.reap() == []

    def test_live_leases_are_left_alone(self, tmp_path):
        store = JobStore(tmp_path)
        runner = JobRunner(store, workers=1)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(meta.id, RUNNING, owner="alive", lease_s=60.0)
        assert runner.reap() == []
        assert store.meta(meta.id).status == RUNNING

    def test_reaper_thread_reclaims_a_hung_worker(
        self, tmp_path, slow_backend_name
    ):
        # A truly hung worker stops heartbeating; modeled here by
        # stealing its lease (so its beats are refused and cannot
        # refresh the deadline) and expiring the deadline. The reaper
        # thread must then quarantine (max_attempts=1) on its own,
        # while the displaced worker winds down cooperatively — its
        # heartbeat.lost flag trips at the next wave.
        with CampaignServer(
            tmp_path / "svc", workers=1, lease_s=0.2,
            reaper_interval_s=0.05, max_attempts=1,
        ) as server:
            client = ServiceClient(server.url)
            meta = client.submit(SLOW_SPEC)
            _wait_until(
                lambda: client.job(meta["id"])["status"] == RUNNING
            )
            stored = server.store.meta(meta["id"])
            server.store._write_meta(dataclasses.replace(
                stored,
                lease_owner="somebody-else",
                lease_deadline=time.time() - 1,
            ))
            final = _wait_until(lambda: (
                client.job(meta["id"])["status"] in TERMINAL_STATES
                and client.job(meta["id"])
            ))
            assert final["status"] == QUARANTINED
            assert final["history"][-1]["outcome"] == "lease-expired"


class TestCheckpointResume:
    def test_kill_resume_is_byte_identical_and_warm(self, tmp_path):
        spec = JobSpec.from_dict(QUICK_SPEC)

        # Reference: an uninterrupted server run of the same spec.
        with CampaignServer(tmp_path / "ref", workers=1) as ref_server:
            ref_client = ServiceClient(ref_server.url)
            ref_meta = ref_client.submit(QUICK_SPEC)
            _wait_until(lambda: (
                ref_client.job(ref_meta["id"])["status"] in TERMINAL_STATES
            ))
            assert ref_client.job(ref_meta["id"])["status"] == DONE
            reference_report = ref_client.report_bytes(ref_meta["id"])
            checkpoint = ref_server.store.checkpoint_path(ref_meta["id"])
            assert checkpoint.is_file()

        # Crash scene: a job caught mid-run by a dead server — status
        # running, lease held by a worker that no longer exists, and a
        # checkpoint store already holding every completed probe (the
        # reference job's store doubles as "attempt 1 finished all its
        # probes before the crash").
        data_dir = tmp_path / "crashed"
        store = JobStore(data_dir)
        orphan = store.new_job(spec)
        shutil.copy(checkpoint, store.checkpoint_path(orphan.id))
        store.transition(orphan.id, RUNNING, owner="dead-pid", lease_s=30.0)

        with CampaignServer(data_dir, workers=1) as server:
            client = ServiceClient(server.url)
            final = _wait_until(lambda: (
                client.job(orphan.id)["status"] in TERMINAL_STATES
                and client.job(orphan.id)
            ))
            assert final["status"] == DONE
            assert final["attempt"] == 2
            assert final["history"][-1]["outcome"] == "server-restart"
            # Warm resume: the checkpoint answered probes, the engine
            # re-executed only what it had to.
            assert final["engine_stats"]["persistent_hits"] > 0
            # Determinism: byte-identical to the uninterrupted run.
            assert client.report_bytes(orphan.id) == reference_report
            kinds = [
                doc["event"] for doc in _events(server.store, orphan.id)
            ]
            assert "job_requeued" in kinds

    def test_jobs_get_private_checkpoint_stores(self, tmp_path):
        with CampaignServer(tmp_path / "svc", workers=1) as server:
            client = ServiceClient(server.url)
            meta = client.submit(QUICK_SPEC)
            _wait_until(
                lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
            )
            assert server.store.checkpoint_path(meta["id"]).is_file()
            # The spec stays what the client asked for — the
            # checkpoint is runner plumbing, not spec rewriting.
            assert server.store.spec(meta["id"]).run_cache is None

    def test_checkpoint_can_be_disabled(self, tmp_path):
        with CampaignServer(
            tmp_path / "svc", workers=1, checkpoint_jobs=False
        ) as server:
            client = ServiceClient(server.url)
            meta = client.submit(QUICK_SPEC)
            _wait_until(
                lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
            )
            assert not server.store.checkpoint_path(meta["id"]).exists()


class TestTornMeta:
    def test_torn_meta_reads_as_torn_not_crash(self, tmp_path):
        store = JobStore(tmp_path)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.meta_path(meta.id).write_text('{"id": "job-0001", "sta')
        with pytest.raises(TornMetaError):
            store.meta(meta.id)
        # Listings skip it instead of blowing up.
        assert store.list_jobs() == []

    def test_recover_rebuilds_torn_meta_from_spec(self, tmp_path):
        store = JobStore(tmp_path)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(meta.id, RUNNING)
        # Kill-mid-write simulation: a torn meta.json and the
        # atomic-write temp file left behind.
        store.meta_path(meta.id).write_text('{"id": "job-0001", "sta')
        temp = store.meta_path(meta.id).with_suffix(".json.tmp")
        temp.write_text("{")

        reopened = JobStore(tmp_path)
        _resumed, _quarantined, requeue = reopened.recover()
        assert [m.id for m in requeue] == [meta.id]
        rebuilt = reopened.meta(meta.id)
        assert rebuilt.status == QUEUED
        assert rebuilt.app == "weborf"
        assert rebuilt.history[-1]["outcome"] == "rebuilt-after-torn-meta"
        assert not temp.exists()

    def test_recover_rebuilds_missing_meta(self, tmp_path):
        store = JobStore(tmp_path)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.meta_path(meta.id).unlink()
        _resumed, _quarantined, requeue = JobStore(tmp_path).recover()
        assert [m.id for m in requeue] == [meta.id]
        rebuilt = JobStore(tmp_path).meta(meta.id)
        assert rebuilt.status == QUEUED
        assert rebuilt.history[-1]["outcome"] == "rebuilt-after-missing-meta"

    def test_torn_job_runs_to_done_after_restart(self, tmp_path):
        data_dir = tmp_path / "svc"
        store = JobStore(data_dir)
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.meta_path(meta.id).write_text("not json at all")
        with CampaignServer(data_dir, workers=1) as server:
            client = ServiceClient(server.url)
            final = _wait_until(lambda: (
                client.job(meta.id)["status"] in TERMINAL_STATES
                and client.job(meta.id)
            ))
            assert final["status"] == DONE


class TestAdmissionControl:
    def test_queue_full_is_429_with_retry_after(
        self, tmp_path, slow_backend_name
    ):
        with CampaignServer(
            tmp_path / "svc", workers=1, max_queue=1
        ) as server:
            client = ServiceClient(server.url)
            first = client.submit(SLOW_SPEC)
            _wait_until(
                lambda: client.job(first["id"])["status"] == RUNNING
            )
            second = client.submit(SLOW_SPEC)
            with pytest.raises(ServiceError) as caught:
                client.submit(SLOW_SPEC)
            assert caught.value.status == 429
            assert caught.value.retry_after_s > 0
            assert "queue full" in caught.value.message
            # The refused submission left no trace on disk.
            ids = {meta["id"] for meta in client.jobs()}
            assert ids == {first["id"], second["id"]}
            client.cancel(second["id"])
            client.cancel(first["id"])

    def test_runner_rejects_before_touching_disk(self, tmp_path):
        store = JobStore(tmp_path)
        runner = JobRunner(store, workers=1, max_queue=1)
        # Not started: nothing drains the queue, so depth is exact.
        runner.submit(JobSpec(**QUICK_SPEC))
        with pytest.raises(QueueFullError) as caught:
            runner.submit(JobSpec(**QUICK_SPEC))
        assert caught.value.retry_after_s > 0
        assert len(store.list_jobs()) == 1


class TestDrain:
    def test_drain_finishes_running_and_parks_queued(
        self, tmp_path, slow_backend_name
    ):
        with CampaignServer(tmp_path / "svc", workers=1) as server:
            client = ServiceClient(server.url)
            running = client.submit(SLOW_SPEC)
            _wait_until(
                lambda: client.job(running["id"])["status"] == RUNNING
            )
            parked = client.submit(QUICK_SPEC)

            plan = client.drain()
            assert plan["draining"] is True
            assert client.health()["draining"] is True
            assert client.stats()["queue"]["draining"] is True

            # Intake is closed...
            with pytest.raises(ServiceError) as caught:
                client.submit(QUICK_SPEC)
            assert caught.value.status == 503

            # ...in-flight work finishes...
            final = _wait_until(lambda: (
                client.job(running["id"])["status"] in TERMINAL_STATES
                and client.job(running["id"])
            ))
            assert final["status"] == DONE

            # ...and the parked job stays queued on disk for the next
            # server start, never picked up by the draining workers.
            _wait_until(lambda: server.runner.busy_workers == 0)
            assert client.job(parked["id"])["status"] == QUEUED

    def test_drained_jobs_run_on_next_start(self, tmp_path):
        data_dir = tmp_path / "svc"
        store = JobStore(data_dir)
        parked = store.new_job(JobSpec(**QUICK_SPEC))
        with CampaignServer(data_dir, workers=1) as server:
            client = ServiceClient(server.url)
            final = _wait_until(lambda: (
                client.job(parked.id)["status"] in TERMINAL_STATES
                and client.job(parked.id)
            ))
            assert final["status"] == DONE


class TestQueryValidation:
    @pytest.fixture
    def done_job(self, tmp_path):
        with CampaignServer(tmp_path / "svc", workers=1) as server:
            client = ServiceClient(server.url)
            meta = client.submit(QUICK_SPEC)
            _wait_until(
                lambda: client.job(meta["id"])["status"] in TERMINAL_STATES
            )
            yield client, meta["id"]

    @pytest.mark.parametrize("timeout", ["-1", "-0.5", "nan", "inf", "-inf"])
    def test_bad_timeout_is_400(self, done_job, timeout):
        client, job_id = done_job
        with pytest.raises(ServiceError) as caught:
            client._json("GET", f"/jobs/{job_id}/events?timeout={timeout}")
        assert caught.value.status == 400
        assert "timeout" in caught.value.message

    def test_huge_timeout_is_clamped_not_rejected(self, done_job):
        client, job_id = done_job
        # Terminal job: even a clamped long-poll returns immediately.
        lines, _, status = client.events(job_id, timeout=1e9)
        assert status == DONE and lines

    def test_negative_since_is_400(self, done_job):
        client, job_id = done_job
        with pytest.raises(ServiceError) as caught:
            client._json("GET", f"/jobs/{job_id}/events?since=-5")
        assert caught.value.status == 400
        assert "since" in caught.value.message

    def test_non_numeric_params_are_400(self, done_job):
        client, job_id = done_job
        for query in ("timeout=soon", "since=first"):
            with pytest.raises(ServiceError) as caught:
                client._json("GET", f"/jobs/{job_id}/events?{query}")
            assert caught.value.status == 400

    def test_unknown_state_filter_is_400(self, done_job):
        client, _ = done_job
        with pytest.raises(ServiceError) as caught:
            client._json("GET", "/jobs?state=bogus")
        assert caught.value.status == 400
        assert "bogus" in caught.value.message

    def test_state_filter_selects(self, done_job):
        client, job_id = done_job
        assert [m["id"] for m in client.jobs(state="done")] == [job_id]
        assert client.jobs(state="quarantined") == []


class TestShutdownMarkers:
    def test_stop_flushes_terminal_marker_for_running_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        runner = JobRunner(store, workers=1)
        runner.start()
        # A job running under a worker that will outlive the join
        # window (modeled by never giving it to this runner's queue):
        # stop() must still flush a terminal marker to its stream.
        meta = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(meta.id, RUNNING, owner="wedged", lease_s=30.0)
        runner.stop(cancel_running=True, timeout=0.5)
        kinds = [doc["event"] for doc in _events(store, meta.id)]
        assert "job_interrupted" in kinds

    def test_worker_crash_leaves_terminal_marker(self, tmp_path):
        # An unresolvable backend field sails through spec validation
        # (validate checks the analyzer knobs, not registry presence —
        # the HTTP front door checks that) but blows up in the worker:
        # the stream must still end with a terminal marker.
        store = JobStore(tmp_path)
        runner = JobRunner(store, workers=1)
        meta = runner.submit(JobSpec(**{**QUICK_SPEC, "backend": "gone"}))
        runner.start()
        _wait_until(lambda: store.meta(meta.id).status in TERMINAL_STATES)
        assert store.meta(meta.id).status == "failed"
        kinds = [doc["event"] for doc in _events(store, meta.id)]
        assert "job_failed" in kinds
        runner.stop()


class TestClientRetries:
    def test_get_retries_then_raises_service_unavailable(self, tmp_path):
        client = ServiceClient(
            "http://127.0.0.1:9", retries=2, retry_backoff_s=0.01
        )
        with pytest.raises(ServiceUnavailableError) as caught:
            client.health()
        assert caught.value.attempts == 3

    def test_post_never_retries_transport_errors(self):
        client = ServiceClient(
            "http://127.0.0.1:9", retries=5, retry_backoff_s=0.01
        )
        started = time.monotonic()
        with pytest.raises(OSError):
            client.submit(QUICK_SPEC)
        # No backoff sleeps happened: one attempt, straight failure.
        assert time.monotonic() - started < 1.0

    def test_zero_retries_restores_fail_fast(self):
        client = ServiceClient("http://127.0.0.1:9", retries=0)
        with pytest.raises(OSError):
            client.health()

    def test_tail_survives_server_restart_mid_stream(
        self, tmp_path, slow_backend_name
    ):
        data_dir = tmp_path / "svc"
        first = CampaignServer(data_dir, workers=1).start()
        port = first.address[1]
        client = ServiceClient(
            first.url, retries=8, retry_backoff_s=0.05
        )
        meta = client.submit(SLOW_SPEC)
        _wait_until(lambda: client.job(meta["id"])["status"] == RUNNING)

        second_holder = {}

        def restart():
            time.sleep(0.2)
            first.close(cancel_running=True)
            second_holder["server"] = CampaignServer(
                data_dir, port=port, workers=1
            ).start()

        restarter = threading.Thread(target=restart)
        restarter.start()
        try:
            # The tail rides through the restart on GET retries: the
            # long-poll that dies with the first server is re-polled
            # against the second with the same cursor.
            lines = list(client.tail(meta["id"], poll=1.0))
            assert client.last_status in TERMINAL_STATES
            assert lines
        finally:
            restarter.join()
            second_holder["server"].close()


class TestDurabilityCLI:
    def test_jobs_state_filter_lists_quarantined(self, tmp_path, capsys):
        data_dir = tmp_path / "svc"
        store = JobStore(data_dir)
        poisoned = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(poisoned.id, RUNNING, owner="dead", lease_s=0.001)
        healthy = store.new_job(JobSpec(**QUICK_SPEC))
        with CampaignServer(
            data_dir, workers=1, max_attempts=1
        ) as server:
            # recover() quarantines the poisoned orphan on start
            # (attempt budget of 1 is already spent).
            _wait_until(lambda: (
                ServiceClient(server.url).job(healthy.id)["status"]
                in TERMINAL_STATES
            ))
            code = main([
                "jobs", "--url", server.url, "--state", "quarantined",
            ])
            out = capsys.readouterr().out
            assert code == 0
            assert poisoned.id in out
            assert healthy.id not in out
            assert "quarantined" in out

            code = main([
                "jobs", "--url", server.url, "--state", "done", "--json",
            ])
            out = capsys.readouterr().out
            listed = json.loads(out)
            assert [m["id"] for m in listed] == [healthy.id]

    def test_drain_command(self, tmp_path, capsys):
        with CampaignServer(tmp_path / "svc", workers=1) as server:
            code = main(["drain", "--url", server.url])
            out = capsys.readouterr().out
            assert code == 0
            assert "draining" in out
            assert server.runner.draining is True

    def test_serve_flags_reach_the_runner(self, tmp_path):
        server = CampaignServer(
            tmp_path / "svc",
            max_queue=7, lease_s=12.0, max_attempts=5,
            checkpoint_jobs=False,
        )
        try:
            assert server.runner.max_queue == 7
            assert server.runner.lease_s == 12.0
            assert server.runner.max_attempts == 5
            assert server.runner.checkpoint_jobs is False
        finally:
            # Never start()ed, so only the bound socket needs release
            # (close() would block on an HTTP loop that never ran).
            server._httpd.server_close()


class TestProgressHook:
    def test_hook_fires_at_wave_boundaries(self):
        calls = []
        spec = JobSpec.from_dict(QUICK_SPEC)
        with LoupeSession(config=spec.analyzer_config()) as session:
            session.analyze(
                spec.request(), progress_hook=lambda: calls.append(1)
            )
        assert len(calls) > 0

    def test_hook_exceptions_never_kill_the_campaign(self):
        def bomb():
            raise RuntimeError("heartbeat infrastructure down")

        spec = JobSpec.from_dict(QUICK_SPEC)
        with LoupeSession(config=spec.analyzer_config()) as session:
            result = session.analyze(spec.request(), progress_hook=bomb)
        assert result is not None

    def test_hook_excluded_from_config_equality(self):
        from repro.core.analyzer import AnalyzerConfig

        assert AnalyzerConfig(progress_hook=lambda: None) == \
            AnalyzerConfig(progress_hook=lambda: None) == AnalyzerConfig()


class TestStatsGauges:
    def test_attempt_and_queue_age_metrics(self, tmp_path):
        data_dir = tmp_path / "svc"
        store = JobStore(data_dir)
        orphan = store.new_job(JobSpec(**QUICK_SPEC))
        store.transition(orphan.id, RUNNING, owner="dead", lease_s=30.0)
        with CampaignServer(data_dir, workers=1) as server:
            client = ServiceClient(server.url)
            _wait_until(lambda: (
                client.job(orphan.id)["status"] in TERMINAL_STATES
            ))
            stats = client.stats()
            # The resumed orphan ran as attempt 2: one retry observed.
            assert stats["attempts"]["retries"] >= 1
            assert stats["attempts"]["max_observed"] >= 2
            assert stats["attempts"]["max_attempts"] == 3
            assert stats["queue"]["max_queue"] is None
            assert math.isfinite(stats["queue"]["oldest_age_s"])
