"""Executor-equivalence tests: sharding never changes conclusions.

The engine's contract is that ``executor="serial"``, ``"thread"``,
``"process"``, and ``"remote"`` are pure scheduling choices — every
one of them must
produce byte-identical :class:`FeatureReport`s (and therefore
identical :class:`Database` payloads) for the same analysis. This
module pins that contract two ways:

* a property test over *generated* simulated programs (hypothesis
  drives op count, stub/fake reactions, and replica counts), and
* an exhaustive sweep over the hand-modeled appsim corpus.

It also covers the capability-fallback ladder: non-parallel-safe
backends serialize, declared-but-unpicklable backends degrade from
processes to threads.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import (
    abort,
    breaks,
    breaks_core,
    disable,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.corpus import seven_apps
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.engine import ProbeEngine
from repro.core.policy import stubbing
from repro.core.runner import process_shardable
from repro.core.workload import benchmark, health_check
from repro.db import Database
from repro.fabric.worker import FabricWorker

EXECUTORS = ("serial", "thread", "process", "remote")


@pytest.fixture(scope="module")
def fleet():
    """Two live in-process fabric workers for the ``remote`` legs."""
    with FabricWorker() as one, FabricWorker() as two:
        yield (one.address, two.address)

#: Syscalls the generated programs draw ops from.
_SYSCALLS = ("read", "close", "uname", "prctl", "mmap", "brk", "fcntl")

_STUBS = (ignore, abort, safe_default, lambda: disable("extra"))
_FAKES = (harmless, breaks_core, lambda: breaks("extra"))


def _digest(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def _database_payload(results):
    return json.dumps(
        Database.collect(results).to_document(), sort_keys=True
    )


@st.composite
def _programs(draw):
    count = draw(st.integers(min_value=1, max_value=len(_SYSCALLS)))
    syscalls = draw(st.permutations(_SYSCALLS))[:count]
    ops = tuple(
        SyscallOp(
            syscall=syscall,
            feature="extra" if draw(st.booleans()) else "core",
            on_stub=_STUBS[draw(st.integers(0, len(_STUBS) - 1))](),
            on_fake=_FAKES[draw(st.integers(0, len(_FAKES) - 1))](),
        )
        for syscall in syscalls
    )
    return SimProgram(
        name="generated",
        version="1",
        ops=ops,
        features=frozenset({"core", "extra"}),
        profiles={"*": WorkloadProfile(metric=500.0)},
    )


def _analyze(program, workload, executor, replicas, workers=()):
    with Analyzer(AnalyzerConfig(
        replicas=replicas,
        parallel=1 if executor == "serial" else 3,
        executor=executor,
        workers=workers,
    )) as analyzer:
        return analyzer.analyze(SimBackend(program), workload)


class TestExecutorEquivalenceProperty:
    @settings(max_examples=12, deadline=None)
    @given(program=_programs(), replicas=st.integers(1, 3),
           measured=st.booleans())
    def test_all_executors_byte_identical(
        self, fleet, program, replicas, measured
    ):
        workload = (
            benchmark("bench", metric_name="req/s")
            if measured else health_check("health")
        )
        reference = _analyze(program, workload, "serial", replicas)
        for executor in ("thread", "process", "remote"):
            variant = _analyze(
                program, workload, executor, replicas,
                workers=fleet if executor == "remote" else (),
            )
            assert _digest(variant) == _digest(reference), executor
            for feature, report in reference.features.items():
                assert variant.features[feature] == report


class TestExecutorEquivalenceCorpus:
    @pytest.fixture(scope="class")
    def corpus_reference(self):
        apps = seven_apps()
        results = [
            _analyze_app(app, "serial") for app in apps
        ]
        return apps, results

    def test_thread_and_process_match_serial(self, corpus_reference):
        apps, reference = corpus_reference
        reference_payload = _database_payload(reference)
        for executor in ("thread", "process"):
            results = [_analyze_app(app, executor) for app in apps]
            for left, right in zip(reference, results):
                assert _digest(left) == _digest(right), (left.app, executor)
            assert _database_payload(results) == reference_payload, executor

    def test_remote_matches_serial(self, corpus_reference, fleet):
        apps, reference = corpus_reference
        results = [
            _analyze_app(app, "remote", workers=fleet) for app in apps
        ]
        for left, right in zip(reference, results):
            assert _digest(left) == _digest(right), (left.app, "remote")
        assert _database_payload(results) == _database_payload(reference)


def _analyze_app(app, executor, workers=()):
    with Analyzer(AnalyzerConfig(
        parallel=1 if executor == "serial" else 4, executor=executor,
        workers=workers,
    )) as analyzer:
        return analyzer.analyze(
            app.backend(), app.workload("bench"),
            app=app.name, app_version=app.version,
        )


class TestCapabilityFallback:
    def test_unsafe_backend_serializes_under_process_executor(self):
        """No parallel_safe declaration -> strictly serial, even when
        the engine was asked for processes (observable through
        early-exit skipping every sibling after the first failure)."""

        class _Unsafe:
            name = "sim:unsafe"
            deterministic = False

            def __init__(self):
                self.calls = 0

            def run(self, workload, policy, *, replica=0):
                self.calls += 1
                from collections import Counter

                from repro.core.runner import RunResult
                return RunResult(success=False, traced=Counter({"read": 1}),
                                 failure_reason="always fails")

        backend = _Unsafe()
        with ProbeEngine(parallel=4, executor="process") as engine:
            outcome = engine.run_replicas(
                backend, benchmark("b", "m"), stubbing("close"), 3,
            )
        assert backend.calls == 1
        assert engine.stats.replicas_skipped == 2
        assert not outcome.all_succeeded

    def test_unpicklable_backend_degrades_to_threads(self):
        """process_safe declared but the object cannot cross a process
        boundary -> thread sharding, not a pool crash."""
        program = SimProgram(
            name="local", version="1",
            ops=(SyscallOp(syscall="read", on_stub=ignore(),
                           on_fake=harmless()),),
            profiles={"*": WorkloadProfile(metric=10.0)},
        )

        class _Wrapper:
            def __init__(self, inner):
                self._inner = inner
                self.name = inner.name
                self.deterministic = True
                self.parallel_safe = True
                self.process_safe = True
                self._poison = lambda: None  # unpicklable on purpose

            def run(self, workload, policy, *, replica=0):
                return self._inner.run(workload, policy, replica=replica)

        backend = _Wrapper(SimBackend(program))
        assert not process_shardable(backend)
        with Analyzer(AnalyzerConfig(parallel=3, executor="process")) \
                as analyzer:
            result = analyzer.analyze(backend, health_check("health"))
        reference = _analyze(program, health_check("health"), "serial", 3)
        assert _digest(result) == _digest(reference)

    def test_process_shardable_requires_declaration(self):
        backend = SimBackend(SimProgram(
            name="declared", version="1",
            ops=(SyscallOp(syscall="read", on_stub=ignore(),
                           on_fake=harmless()),),
        ))
        assert process_shardable(backend)
        backend.process_safe = False
        assert not process_shardable(backend)
