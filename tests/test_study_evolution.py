"""Tests for the temporal evolution studies (Table 3 and Figure 8)."""

import pytest

from repro.study.evolution import (
    ARCH_VARIANTS,
    NGINX_GLIBC_231_X86_64,
    NGINX_GLIBC_232_I386,
    figure8,
    glibc_comparison,
    render_table3,
)
from repro.syscalls import TABLE_I386, TABLE_X86_64


class TestTable3Data:
    def test_paper_counts(self):
        """Table 3: 48 syscalls under glibc 2.3.2, 51 under glibc 2.31."""
        assert len(NGINX_GLIBC_232_I386) == 48
        assert len(NGINX_GLIBC_231_X86_64) == 51

    def test_old_names_resolve_on_i386(self):
        """Every old-column name is a direct i386 syscall or one of the
        socket operations multiplexed behind socketcall(102)."""
        from repro.syscalls import SOCKETCALL_OPS

        socket_ops = set(SOCKETCALL_OPS.values())
        for name in NGINX_GLIBC_232_I386:
            assert name in TABLE_I386 or name in socket_ops, name

    def test_new_names_resolve_on_x86_64(self):
        for name in NGINX_GLIBC_231_X86_64:
            assert name in TABLE_X86_64, name


class TestClassification:
    def test_exactly_eight_new_syscalls(self):
        """Section 5.5: 'we only count 8 new system calls in 17 years'."""
        comparison = glibc_comparison()
        assert len(comparison.genuinely_new) == 8

    def test_new_syscalls_identity(self):
        comparison = glibc_comparison()
        assert comparison.genuinely_new == {
            "_sysctl", "lstat", "mprotect", "openat", "prlimit64",
            "sendfile", "set_robust_list", "set_tid_address",
        }

    def test_deprecations_detected(self):
        """Most change comes from deprecation of old syscalls."""
        comparison = glibc_comparison()
        assert {"open", "uname", "gettimeofday", "getrlimit"} == set(
            comparison.deprecated
        )

    def test_arch_variants_used(self):
        comparison = glibc_comparison()
        assert comparison.arch_variants["mmap2"] == "mmap"
        assert comparison.arch_variants["fstat64"] == "fstat"
        assert comparison.arch_variants["set_thread_area"] == "arch_prctl"

    def test_arch_variant_targets_exist(self):
        for target in ARCH_VARIANTS.values():
            assert target in TABLE_X86_64

    def test_render(self):
        text = render_table3(glibc_comparison())
        assert "48 syscalls" in text
        assert "genuinely new (8)" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def pairs(self):
        return figure8()

    def test_three_subjects(self, pairs):
        assert {p.app for p in pairs} == {"httpd", "nginx", "redis"}

    def test_usage_stable_over_time(self, pairs):
        """Insight 5.5: roughly the same syscall counts across 11-15y."""
        for pair in pairs:
            assert pair.traced_drift <= 6
            assert pair.avoidable_drift <= 6

    def test_old_builds_predate_recent(self, pairs):
        for pair in pairs:
            assert pair.old.year < pair.recent.year

    def test_required_counts_stable(self, pairs):
        for pair in pairs:
            assert abs(pair.recent.required - pair.old.required) <= 4

    def test_bars_internally_consistent(self, pairs):
        for pair in pairs:
            for bar in (pair.old, pair.recent):
                assert bar.required + bar.avoidable <= bar.traced + 1
                assert bar.avoidable >= max(bar.stubbable, bar.fakeable)
