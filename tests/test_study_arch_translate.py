"""Tests for the generative i386 translation (Table 3 cross-check)."""

import pytest

from repro.study.arch_translate import (
    GeneratedColumn,
    generate_table3_left,
    to_i386_era,
)
from repro.syscalls import SOCKETCALL_OPS, TABLE_I386


class TestTranslation:
    def test_struct_variants(self):
        translated = to_i386_era(frozenset({"stat", "fstat", "lseek", "fcntl"}))
        assert translated == {"stat64", "fstat64", "_llseek", "fcntl64"}

    def test_credential_variants(self):
        translated = to_i386_era(frozenset({"setuid", "setgroups", "geteuid"}))
        assert translated == {"setuid32", "setgroups32", "geteuid32"}

    def test_tls_setup(self):
        assert to_i386_era(frozenset({"arch_prctl"})) == {"set_thread_area"}

    def test_mmap_brings_old_mmap(self):
        """glibc 2.3.2 used both mmap paths (as the paper's column shows)."""
        assert to_i386_era(frozenset({"mmap"})) == {"mmap2", "old_mmap"}

    def test_modern_only_calls_vanish(self):
        translated = to_i386_era(
            frozenset({"set_robust_list", "getrandom", "read"})
        )
        assert translated == {"read"}

    def test_openat_becomes_open(self):
        assert to_i386_era(frozenset({"openat"})) == {"open"}

    def test_all_outputs_are_era_valid(self):
        socket_ops = set(SOCKETCALL_OPS.values())
        inputs = frozenset(
            "read write close stat fstat lseek mmap openat arch_prctl "
            "setuid recvfrom accept prlimit64 fcntl".split()
        )
        for name in to_i386_era(inputs):
            assert name in TABLE_I386 or name in socket_ops, name


class TestGeneratedColumn:
    @pytest.fixture(scope="class")
    def column(self):
        return generate_table3_left()

    def test_high_agreement_with_transcription(self, column):
        """The behavioral model and the paper's measured table are
        independent artifacts; they must substantially agree."""
        assert column.agreement >= 0.85

    def test_no_hallucinated_syscalls(self, column):
        """Everything the model generates appears in the paper's table."""
        assert not column.extra_in_generated

    def test_misses_are_documented_gaps(self, column):
        """Remaining misses stem from suite-gated model features."""
        assert column.missing_from_generated <= {"pwrite"}

    def test_sizes_in_range(self, column):
        assert 40 <= len(column.generated) <= len(column.transcribed)

    def test_agreement_metric(self):
        same = GeneratedColumn(
            generated=frozenset({"a", "b"}), transcribed=frozenset({"a", "b"})
        )
        assert same.agreement == 1.0
        disjoint = GeneratedColumn(
            generated=frozenset({"a"}), transcribed=frozenset({"b"})
        )
        assert disjoint.agreement == 0.0
