"""Tests for the make/debhelper suite integration (Section 3.3)."""

import shutil
import subprocess

import pytest

from repro.core.workload import WorkloadKind
from repro.errors import WorkloadError
from repro.ptracer.frameworks import (
    discover_debhelper_suite,
    discover_make_suite,
    suite_workload,
    workload_for_project,
)


@pytest.fixture()
def make_project(tmp_path, gcc_available):
    """A miniature project: one binary, a Makefile with a test target."""
    if not gcc_available:
        pytest.skip("gcc not available")
    source = tmp_path / "app.c"
    source.write_text(
        '#include <stdio.h>\nint main(void){ printf("ok\\n"); return 0; }\n'
    )
    subprocess.run(
        ["gcc", "-O2", "-o", str(tmp_path / "app"), str(source)],
        check=True, capture_output=True,
    )
    (tmp_path / "Makefile").write_text(
        "all: app\n\ntest:\n\t./app\n\nclean:\n\trm -f app\n"
    )
    return tmp_path


class TestMakeDiscovery:
    def test_discover(self, make_project):
        suite = discover_make_suite(make_project)
        assert suite.source == "makefile"
        assert suite.runner[-1] == "test"
        assert any(path.endswith("/app") for path in suite.binaries)

    def test_check_target_fallback(self, tmp_path):
        (tmp_path / "Makefile").write_text("check:\n\ttrue\n")
        suite = discover_make_suite(tmp_path)
        assert suite.runner[-1] == "check"

    def test_no_makefile(self, tmp_path):
        with pytest.raises(WorkloadError):
            discover_make_suite(tmp_path)

    def test_no_test_target(self, tmp_path):
        (tmp_path / "Makefile").write_text("all:\n\ttrue\n")
        with pytest.raises(WorkloadError):
            discover_make_suite(tmp_path)


class TestDebhelperDiscovery:
    def test_discover(self, tmp_path):
        rules = tmp_path / "debian" / "rules"
        rules.parent.mkdir()
        rules.write_text("#!/usr/bin/make -f\ndh_auto_test:\n\ttrue\n")
        suite = discover_debhelper_suite(tmp_path)
        assert suite.source == "debhelper"
        assert "dh_auto_test" in suite.runner

    def test_not_a_package(self, tmp_path):
        with pytest.raises(WorkloadError):
            discover_debhelper_suite(tmp_path)

    def test_workload_for_project_prefers_debhelper(self, tmp_path):
        rules = tmp_path / "debian" / "rules"
        rules.parent.mkdir()
        rules.write_text("dh_auto_test:\n\ttrue\n")
        (tmp_path / "Makefile").write_text("test:\n\ttrue\n")
        workload = workload_for_project(tmp_path)
        assert "dh_auto_test" in workload.argv


class TestSuiteWorkload:
    def test_workload_shape(self, make_project):
        workload = workload_for_project(make_project)
        assert workload.kind is WorkloadKind.TEST_SUITE
        assert workload.argv[0] == "make"
        assert workload.binaries

    @pytest.mark.ptrace
    def test_traced_suite_respects_whitelist(self, make_project):
        """Run `make test` under trace: only the project binary's
        syscalls are attributed — make's and the shell's are not."""
        if shutil.which("make") is None:
            pytest.skip("make not available")
        from repro.core.policy import passthrough
        from repro.ptracer.backend import PtraceBackend

        workload = workload_for_project(make_project, timeout_s=60.0)
        result = PtraceBackend().run(workload, passthrough())
        assert result.success
        traced = result.syscalls()
        # The app prints via write and exits; make/sh would have added
        # dozens of wait4/pipe/execve-heavy syscalls.
        assert "write" in traced
        assert "wait4" not in traced
