"""Tests for the run-cache storage subsystem (`repro.core.cachestore`).

Covers the `open_store` factory (scheme/extension/magic dispatch), the
JSONL backend's loaded/stale accounting and `compact()` rewrite, the
SQLite backend (upsert puts, LRU eviction, live cross-process
read-through, crash tolerance mid-transaction), jsonl→sqlite
migration preserving warm campaigns, the session's store-identity
normalization, and the session-emitted `store_stats` event.
"""

import json
import os
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.api.events import StoreStatsEvent
from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import build
from repro.core.analyzer import AnalyzerConfig
from repro.core.cachestore import (
    CacheStoreError,
    JsonlRunCache,
    SqliteRunCache,
    migrate_store,
    open_store,
    parse_store_path,
    store_identity,
)
from repro.core.runner import ResourceUsage, RunResult


def _result(metric=100.0, success=True):
    return RunResult(
        success=success,
        traced=Counter({"read": 3, "close": 1}),
        pseudo_files=Counter({"/proc/self/maps": 1}),
        metric=metric,
        resources=ResourceUsage(fd_peak=12, mem_peak_kb=2048),
        exit_code=0 if success else 1,
        failure_reason=None if success else "boom",
    )


def _key(replica=0, fingerprint="stub:close"):
    return ("sim:app-1.0", "bench", fingerprint, replica)


def _subprocess(code: str, *argv: str) -> None:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        [sys.executable, "-c", code, *argv],
        env=env, capture_output=True, text=True, timeout=120,
    )
    assert completed.returncode == 0, completed.stderr


class TestOpenStoreFactory:
    def test_scheme_always_wins(self, tmp_path):
        kind, path = parse_store_path(f"sqlite:{tmp_path / 'runs.jsonl'}")
        assert kind == "sqlite" and path.name == "runs.jsonl"
        kind, path = parse_store_path(f"jsonl:{tmp_path / 'runs.db'}")
        assert kind == "jsonl" and path.name == "runs.db"

    @pytest.mark.parametrize("name,expected", [
        ("runs.sqlite", SqliteRunCache),
        ("runs.sqlite3", SqliteRunCache),
        ("runs.db", SqliteRunCache),
        ("runs.jsonl", JsonlRunCache),
        ("runs.cache", JsonlRunCache),
    ])
    def test_extension_dispatch(self, tmp_path, name, expected):
        with open_store(tmp_path / name) as store:
            assert isinstance(store, expected)

    def test_magic_sniff_rescues_renamed_sqlite(self, tmp_path):
        original = tmp_path / "runs.sqlite"
        with open_store(original) as store:
            store.put(_key(), _result())
        renamed = tmp_path / "runs.cache"  # non-sqlite extension
        original.rename(renamed)
        with open_store(renamed) as reopened:
            assert isinstance(reopened, SqliteRunCache)
            assert reopened.get(_key()) == _result()

    def test_max_entries_refused_on_jsonl(self, tmp_path):
        with pytest.raises(CacheStoreError, match="sqlite"):
            open_store(tmp_path / "runs.jsonl", max_entries=10)

    def test_mis_extensioned_jsonl_raises_cachestore_error(self, tmp_path):
        path = tmp_path / "runs.db"  # sqlite extension, jsonl content
        with JsonlRunCache(path) as store:
            store.put(_key(), _result())
        with pytest.raises(CacheStoreError, match="not a SQLite"):
            open_store(path)

    def test_store_identity_normalizes_spellings(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.chdir(tmp_path)
        absolute = str(tmp_path / "runs.jsonl")
        assert store_identity("runs.jsonl") == store_identity(absolute)
        assert store_identity("./runs.jsonl") == store_identity(absolute)
        assert store_identity(f"jsonl:{absolute}") == \
            store_identity("runs.jsonl")
        # Different backends over one path are different stores.
        assert store_identity(f"sqlite:{absolute}") != \
            store_identity(absolute)


class TestJsonlAccounting:
    def test_loaded_vs_stale_split(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with JsonlRunCache(path) as store:
            store.put(_key(0), _result(1.0))
            store.put(_key(1), _result(2.0))
            store.put(_key(0), _result(3.0))  # supersedes in place
            assert store.stale_records == 1
        reopened = JsonlRunCache(path)
        # 3 lines on disk: 2 unique keys, 1 superseded duplicate.
        assert reopened.loaded_records == 2
        assert reopened.stale_records == 1
        assert len(reopened) == reopened.loaded_records == 2
        assert reopened.get(_key(0)).metric == 3.0

    def test_compact_drops_stale_keeps_live(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = JsonlRunCache(path)
        live = {}
        for replica in range(4):
            for version in range(5):
                live[_key(replica)] = _result(float(version))
                store.put(_key(replica), _result(float(version)))
        bytes_before = path.stat().st_size
        outcome = store.compact()
        assert outcome.bytes_before == bytes_before
        assert outcome.bytes_after < bytes_before
        assert outcome.records_dropped == 4 * 4
        assert outcome.records_kept == 4
        assert outcome.ratio > 2.0
        assert store.stale_records == 0
        reopened = JsonlRunCache(path)
        assert reopened.stale_records == 0
        assert len(reopened) == 4
        for key, result in live.items():
            assert reopened.get(key) == result

    def test_compact_then_put_reopens_handle(self, tmp_path):
        store = JsonlRunCache(tmp_path / "runs.jsonl")
        store.put(_key(0), _result())
        store.compact()
        store.put(_key(1), _result())
        assert len(JsonlRunCache(store.path)) == 2

    def test_compact_empty_store_is_noop(self, tmp_path):
        outcome = JsonlRunCache(tmp_path / "runs.jsonl").compact()
        assert outcome.bytes_before == outcome.bytes_after == 0
        assert not (tmp_path / "runs.jsonl").exists()

    def test_gc_unsupported(self, tmp_path):
        with pytest.raises(CacheStoreError, match="migrate"):
            JsonlRunCache(tmp_path / "runs.jsonl").gc(10)

    def test_two_writers_append_duplicates_resolved_at_load(self, tmp_path):
        # The documented JSONL limitation: two store instances (two
        # campaigns) sharing one file cannot see each other's puts, so
        # the second append duplicates the first writer's record.
        path = tmp_path / "runs.jsonl"
        a, b = JsonlRunCache(path), JsonlRunCache(path)
        a.put(_key(), _result(1.0))
        b.put(_key(), _result(1.0))  # b's index is blind to a's write
        a.close(), b.close()
        reopened = JsonlRunCache(path)
        assert reopened.loaded_records == 1
        assert reopened.stale_records == 1  # the re-appended duplicate
        assert reopened.get(_key()) == _result(1.0)


class TestSqliteStore:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "runs.sqlite"
        with SqliteRunCache(path) as store:
            assert store.get(_key()) is None
            store.put(_key(), _result())
            assert store.get(_key()) == _result()
        reopened = SqliteRunCache(path)
        assert reopened.get(_key()) == _result()
        assert len(reopened) == reopened.loaded_records == 1
        assert reopened.stale_records == 0

    def test_close_idempotent_and_reconnects(self, tmp_path):
        store = SqliteRunCache(tmp_path / "runs.sqlite")
        store.put(_key(0), _result())
        store.close()
        store.close()
        store.put(_key(1), _result())  # reconnects transparently
        assert len(store) == 2

    def test_upsert_fixes_two_writer_duplicates(self, tmp_path):
        # The regression the JSONL backend documents: two writer
        # instances sharing one file. SQLite's upsert is shared
        # state, so the store never grows with re-put records.
        path = tmp_path / "runs.sqlite"
        a, b = SqliteRunCache(path), SqliteRunCache(path)
        a.put(_key(), _result(1.0))
        b.put(_key(), _result(1.0))   # no duplicate row
        b.put(_key(), _result(2.0))   # last writer wins, in place
        assert len(a) == len(b) == 1
        assert a.get(_key()).metric == 2.0  # a sees b's write live
        a.close(), b.close()

    def test_lru_eviction_under_max_entries(self, tmp_path):
        store = SqliteRunCache(tmp_path / "runs.sqlite", max_entries=2)
        store.put(_key(0), _result(0.0))
        store.put(_key(1), _result(1.0))
        assert store.get(_key(0)) is not None  # refresh replica 0
        store.put(_key(2), _result(2.0))      # evicts replica 1 (LRU)
        assert len(store) == 2
        assert store.get(_key(1)) is None
        assert store.get(_key(0)) is not None
        assert store.get(_key(2)) is not None
        assert store.stats().evictions == 1

    def test_gc_explicit_cap(self, tmp_path):
        store = SqliteRunCache(tmp_path / "runs.sqlite")
        for replica in range(5):
            store.put(_key(replica), _result(float(replica)))
        assert store.gc(2) == 3
        assert len(store) == 2
        with pytest.raises(ValueError, match="cap"):
            store.gc()  # no configured cap, none passed

    def test_live_read_through_across_processes(self, tmp_path):
        """Two concurrent processes sharing one SQLite cache observe
        each other's records without reopening the store."""
        path = tmp_path / "shared.sqlite"
        store = SqliteRunCache(path)  # opened before the writer runs
        assert store.get(_key()) is None
        _subprocess(
            "import sys\n"
            "from collections import Counter\n"
            "from repro.core.cachestore import SqliteRunCache\n"
            "from repro.core.runner import RunResult\n"
            "store = SqliteRunCache(sys.argv[1])\n"
            "store.put(('sim:app-1.0', 'bench', 'stub:close', 0),\n"
            "          RunResult(success=True, traced=Counter({'read': 3,"
            " 'close': 1}), pseudo_files=Counter({'/proc/self/maps': 1}),"
            " metric=100.0))\n"
            "store.close()\n",
            str(path),
        )
        # No reopen: the same store instance sees the other process's
        # committed write on its next read.
        hit = store.get(_key())
        assert hit is not None and hit.metric == 100.0
        store.close()

    def test_crash_mid_transaction_loads_cleanly(self, tmp_path):
        """A SQLite file killed mid-transaction rolls back on the next
        open: every committed record is served, the torn one is gone."""
        path = tmp_path / "killed.sqlite"
        _subprocess(
            "import os, sqlite3, sys\n"
            "from collections import Counter\n"
            "from repro.core.cachestore import SqliteRunCache\n"
            "from repro.core.runner import RunResult\n"
            "store = SqliteRunCache(sys.argv[1])\n"
            "store.put(('sim:app-1.0', 'bench', 'stub:close', 0),\n"
            "          RunResult(success=True, traced=Counter({'read': 3,"
            " 'close': 1}), pseudo_files=Counter({'/proc/self/maps': 1}),"
            " metric=100.0))\n"
            "conn = sqlite3.connect(sys.argv[1], isolation_level=None)\n"
            "conn.execute('BEGIN IMMEDIATE')\n"
            "conn.execute(\"INSERT INTO runs VALUES"
            " ('sim:app-1.0', 'bench', 'stub:close', 1, 'torn', 0, 0, 0)\")\n"
            "os._exit(0)\n",  # hard kill: no commit, no close
            str(path),
        )
        survivor = SqliteRunCache(path)
        assert len(survivor) == 1
        assert survivor.get(_key(0)) is not None
        assert survivor.get(_key(1)) is None  # uncommitted: rolled back


class TestMigration:
    def test_migrate_copies_live_records_only(self, tmp_path):
        src = JsonlRunCache(tmp_path / "runs.jsonl")
        src.put(_key(0), _result(1.0))
        src.put(_key(0), _result(2.0))  # superseded: must not survive
        src.put(_key(1), _result(3.0))
        src.close()
        migrated = migrate_store(
            tmp_path / "runs.jsonl", tmp_path / "runs.sqlite",
        )
        assert migrated == 2
        with open_store(tmp_path / "runs.sqlite") as dst:
            assert len(dst) == 2
            assert dst.get(_key(0)).metric == 2.0
            assert dst.get(_key(1)).metric == 3.0

    def test_migrate_same_file_refused(self, tmp_path):
        with pytest.raises(CacheStoreError, match="same file"):
            migrate_store(tmp_path / "runs.jsonl",
                          f"jsonl:{tmp_path / 'runs.jsonl'}")
        # A scheme forcing the *other* backend onto the same physical
        # file must be refused too — not corrupt it mid-copy.
        with pytest.raises(CacheStoreError, match="same file"):
            migrate_store(tmp_path / "runs.jsonl",
                          f"sqlite:{tmp_path / 'runs.jsonl'}")

    def test_warm_campaign_survives_migration(self, tmp_path):
        """The acceptance criterion: a campaign warmed on JSONL,
        migrated to SQLite, reports the same persistent_hits as a
        JSONL warm re-run — and re-executes nothing."""
        jsonl_path = str(tmp_path / "campaign.jsonl")
        sqlite_path = str(tmp_path / "campaign.sqlite")
        app = build("weborf")
        request = AnalysisRequest.for_app(app, "health")

        with LoupeSession(cache_path=jsonl_path) as cold:
            cold.analyze(request)
        with LoupeSession(cache_path=jsonl_path) as warm_jsonl:
            jsonl_result = warm_jsonl.analyze(request)
            jsonl_stats = warm_jsonl.last_engine_stats
        assert jsonl_stats.persistent_hits > 0
        assert jsonl_stats.runs_executed == 0

        migrate_store(jsonl_path, sqlite_path)

        with LoupeSession(cache_path=sqlite_path) as warm_sqlite:
            sqlite_result = warm_sqlite.analyze(
                AnalysisRequest.for_app(app, "health")
            )
            sqlite_stats = warm_sqlite.last_engine_stats
        assert sqlite_stats.persistent_hits == jsonl_stats.persistent_hits
        assert sqlite_stats.runs_executed == 0
        assert json.dumps(sqlite_result.to_dict(), sort_keys=True) == \
            json.dumps(jsonl_result.to_dict(), sort_keys=True)


class TestSessionIntegration:
    def test_store_for_normalizes_path_spellings(self, tmp_path,
                                                 monkeypatch):
        """The `_store_for` bugfix: two spellings of one file must
        share one store, not race two append handles on one inode."""
        monkeypatch.chdir(tmp_path)
        absolute = str(tmp_path / "cache.jsonl")
        with LoupeSession(cache_path="cache.jsonl") as session:
            assert session._store_for(absolute) is session.run_cache
            assert session._store_for("./cache.jsonl") is session.run_cache
            assert len(session._stores) == 1

    def test_sqlite_session_campaign_warm(self, tmp_path):
        path = str(tmp_path / "campaign.sqlite")
        app = build("weborf")
        with LoupeSession(cache_path=path) as cold:
            cold.analyze(AnalysisRequest.for_app(app, "health"))
            assert cold.last_engine_stats.persistent_hits == 0
        with LoupeSession(cache_path=path) as warm:
            warm.analyze(AnalysisRequest.for_app(app, "health"))
            stats = warm.last_engine_stats
        assert stats.runs_executed == 0
        assert stats.persistent_hits == stats.cache_hits > 0

    def test_store_stats_event_emitted(self, tmp_path):
        events = []
        path = str(tmp_path / "campaign.sqlite")
        with LoupeSession(on_event=events.append, cache_path=path) as s:
            s.analyze(AnalysisRequest.for_app(build("weborf"), "health"))
        store_events = [e for e in events
                        if isinstance(e, StoreStatsEvent)]
        assert len(store_events) == 1
        event = store_events[0]
        assert event.store == "sqlite"
        assert event.entries > 0
        assert event.app == "weborf"
        assert event.to_dict()["event"] == "store_stats"
        # The legacy string protocol never reported store state.
        assert event.legacy_line() is None

    def test_no_store_no_event(self):
        events = []
        with LoupeSession(on_event=events.append) as session:
            session.analyze(AnalysisRequest.for_app(build("weborf"),
                                                    "health"))
        assert not any(isinstance(e, StoreStatsEvent) for e in events)

    def test_config_max_entries_bounds_session_store(self, tmp_path):
        path = str(tmp_path / "bounded.sqlite")
        config = AnalyzerConfig(run_cache=path, run_cache_max_entries=10)
        with LoupeSession(config=config) as session:
            session.analyze(AnalysisRequest.for_app(build("weborf"),
                                                    "health"))
            assert len(session.run_cache) <= 10
            assert session.run_cache.stats().evictions > 0

    def test_config_rejects_nonpositive_max_entries(self):
        with pytest.raises(ValueError, match="run_cache_max_entries"):
            AnalyzerConfig(run_cache_max_entries=0)


class TestRuncacheShim:
    def test_legacy_import_is_jsonl_backend(self):
        from repro.core.runcache import RunCacheStore

        assert RunCacheStore is JsonlRunCache
