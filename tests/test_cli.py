"""Tests for the ``loupe`` command-line interface."""

import dataclasses

import pytest

from repro.cli import main


def _command_like_factory(request):
    """A registry factory whose backend claims real_execution: the
    --exec guard must treat it as consuming the command (capability-
    driven, not name-driven), while it actually runs the sim model —
    keeping these tests ptrace-free."""
    import repro.appsim as appsim
    from repro.api.registry import ResolvedTarget

    target = appsim._appsim_backend_factory(request)
    inner = target.backend

    class CommandLike:
        name = inner.name + "+cmd"

        def capabilities(self):
            return dataclasses.replace(
                inner.capabilities(), real_execution=True
            )

        def run(self, workload, policy, *, replica=0):
            return inner.run(workload, policy, replica=replica)

    return ResolvedTarget(
        backend=CommandLike(), workload=target.workload,
        app=target.app, app_version=target.app_version,
    )


class TestAnalyze:
    def test_analyze_sim_app(self, capsys):
        code = main(["analyze", "--app", "weborf", "--workload", "health"])
        assert code == 0
        out = capsys.readouterr().out
        assert "app: weborf" in out
        assert "required (" in out

    def test_analyze_unknown_app(self, capsys):
        assert main(["analyze", "--app", "doom"]) == 2

    def test_analyze_parallel_jobs(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--jobs", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "app: weborf" in out
        assert "engine:" in out

    def test_analyze_no_cache(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--no-cache",
        ])
        assert code == 0
        assert "0 cache hit(s)" in capsys.readouterr().out

    def test_analyze_rejects_nonpositive_replicas(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--app", "weborf", "--replicas", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_analyze_explicit_backend(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--backend", "appsim",
        ])
        assert code == 0
        assert "app: weborf" in capsys.readouterr().out

    def test_analyze_exec_with_appsim_backend_rejected(self, capsys):
        code = main([
            "analyze", "--backend", "appsim", "--exec", "/bin/true",
        ])
        assert code == 2
        assert "--exec requires" in capsys.readouterr().err

    def test_analyze_unknown_backend(self, capsys):
        assert main(["analyze", "--app", "weborf",
                     "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "available:" in err
        assert "appsim" in err

    def test_analyze_multi_backend_prints_cross_validation(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--backend", "appsim,appsim",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "cross-validation: weborf/health" in out
        # A duplicated name deduplicates to one leg; the render says
        # so honestly instead of claiming vacuous agreement.
        assert "single target: nothing to cross-validate" in out
        # The single-backend report shape is not printed in fan-out mode.
        assert "required (" not in out

    def test_analyze_exec_with_mixed_spec_warns_but_proceeds(self, capsys):
        """analyze mirrors compare: --exec is only refused when *no*
        named backend would run the command; a model/command mix gets
        a stderr note."""
        from repro.api.registry import register_backend, unregister_backend

        register_backend(
            "appsim-cmd", _command_like_factory, replace=True
        )
        try:
            code = main([
                "analyze", "--app", "weborf", "--workload", "health",
                "--backend", "appsim,appsim-cmd", "--exec", "/bin/true",
            ])
        finally:
            unregister_backend("appsim-cmd")
        assert code == 0
        captured = capsys.readouterr()
        assert "only meaningful" in captured.err
        assert "cross-validation:" in captured.out

    def test_analyze_exec_refused_for_commandless_variant(self, capsys):
        """A registered appsim variant (no real_execution) must not
        slip past the guard just because its name isn't 'appsim'."""
        import repro.appsim as appsim
        from repro.api.registry import register_backend, unregister_backend

        register_backend(
            "appsim-b", appsim._appsim_backend_factory, replace=True
        )
        try:
            code = main([
                "analyze", "--app", "weborf", "--workload", "health",
                "--backend", "appsim-b", "--exec", "/bin/true",
            ])
        finally:
            unregister_backend("appsim-b")
        assert code == 2
        assert "--exec requires" in capsys.readouterr().err

    def test_analyze_exec_allows_legacy_contract_backend(self, capsys):
        """A pre-contract backend (bare attributes, no capabilities()
        method) cannot express real_execution; --exec must give it the
        benefit of the doubt instead of refusing — the pre-capability
        CLI refused only the literal name 'appsim'."""
        import repro.appsim as appsim
        from repro.api.registry import (
            ResolvedTarget,
            register_backend,
            unregister_backend,
        )

        def legacy_factory(request):
            target = appsim._appsim_backend_factory(request)
            inner = target.backend

            class Legacy:
                name = inner.name + "+legacy"
                deterministic = True
                parallel_safe = True

                def run(self, workload, policy, *, replica=0):
                    return inner.run(workload, policy, replica=replica)

            return ResolvedTarget(
                backend=Legacy(), workload=target.workload,
                app=target.app, app_version=target.app_version,
            )

        register_backend("legacy-exec", legacy_factory, replace=True)
        try:
            code = main([
                "analyze", "--app", "weborf", "--workload", "health",
                "--backend", "legacy-exec", "--exec", "/bin/true",
            ])
        finally:
            unregister_backend("legacy-exec")
        assert code == 0
        captured = capsys.readouterr()
        assert "--exec requires" not in captured.err
        assert "app: weborf" in captured.out

    def test_analyze_multi_backend_unknown_name_exits_2(self, capsys):
        assert main([
            "analyze", "--app", "weborf",
            "--backend", "appsim,bogus",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "available:" in err
        assert "appsim" in err

    def test_analyze_empty_backend_name_exits_2(self, capsys):
        assert main([
            "analyze", "--app", "weborf", "--backend", "appsim,",
        ]) == 2
        assert "non-empty" in capsys.readouterr().err

    def test_rejected_analyze_leaves_no_run_cache_side_effect(
        self, tmp_path, capsys
    ):
        """Spec validation runs before the session opens (and would
        otherwise create) the --run-cache store — for malformed specs
        and for well-formed-but-unknown names alike."""
        for spec in ("appsim,", "typo", "appsim,typo"):
            cache = tmp_path / f"cache-{spec.strip(',')}.sqlite"
            assert main([
                "analyze", "--app", "weborf", "--backend", spec,
                "--run-cache", str(cache),
            ]) == 2
            capsys.readouterr()
            assert not cache.exists(), spec

    def test_jsonl_emitter_is_concurrency_safe(self, capsys):
        """Fan-out legs emit from several threads into one callback;
        every emitted line must stay well-formed JSON."""
        import json
        import threading

        from repro.api.events import BaselineStarted
        from repro.cli import _jsonl_emitter

        emitter = _jsonl_emitter(
            type("Args", (), {"events": "jsonl"})()
        )
        event = BaselineStarted(replicas=3, app="weborf")

        def blast():
            for _ in range(300):
                emitter(event)

        threads = [threading.Thread(target=blast) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 1200
        assert all(
            json.loads(line)["event"] == "baseline_started"
            for line in lines
        )

    def test_analyze_multi_backend_saves_per_target_records(
        self, tmp_path, capsys
    ):
        out_path = tmp_path / "db.json"
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--backend", "appsim,appsim", "--output", str(out_path),
        ])
        assert code == 0
        from repro.db import Database

        assert len(Database.load(out_path)) == 1

    def test_analyze_events_jsonl(self, capsys):
        import json

        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--events", "jsonl",
        ])
        assert code == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()
                  if line.startswith("{")]
        assert events, "expected at least one JSON event line"
        kinds = [event["event"] for event in events]
        assert kinds[0] == "analysis_started"
        assert "feature_probed" in kinds
        assert kinds[-1] == "analysis_finished"
        # the human report still follows the event stream
        assert "app: weborf" in out

    def test_analyze_saves_database(self, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--output", str(out_path),
        ])
        assert code == 0
        from repro.db import Database

        assert len(Database.load(out_path)) == 1


class TestCompare:
    def test_compare_two_sim_targets(self, capsys):
        import repro.appsim as appsim
        from repro.api.registry import register_backend, unregister_backend

        register_backend(
            "appsim-b", appsim._appsim_backend_factory, replace=True
        )
        try:
            code = main([
                "compare", "--app", "weborf", "--workload", "health",
                "--backends", "appsim,appsim-b",
            ])
        finally:
            unregister_backend("appsim-b")
        assert code == 0
        out = capsys.readouterr().out
        assert "across appsim, appsim-b" in out
        assert "backends agree: no divergences" in out

    def test_compare_exec_with_only_appsim_rejected(self, capsys):
        code = main([
            "compare", "--app", "weborf", "--backends", "appsim,appsim",
            "--exec", "/bin/true",
        ])
        assert code == 2
        assert "--exec requires" in capsys.readouterr().err

    def test_compare_exec_with_appsim_mix_warns(self, capsys):
        from repro.api.registry import register_backend, unregister_backend

        register_backend(
            "appsim-cmd", _command_like_factory, replace=True
        )
        try:
            code = main([
                "compare", "--app", "weborf", "--workload", "health",
                "--backends", "appsim,appsim-cmd", "--exec", "/bin/true",
            ])
        finally:
            unregister_backend("appsim-cmd")
        assert code == 0
        assert "only meaningful" in capsys.readouterr().err

    def test_compare_unknown_backend_exits_2(self, capsys):
        assert main([
            "compare", "--app", "weborf", "--backends", "bogus",
        ]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "available:" in err

    def test_compare_events_jsonl_round_trips_report(self, capsys):
        import json

        from repro.report import CrossValidationReport

        code = main([
            "compare", "--app", "weborf", "--workload", "health",
            "--backends", "appsim,appsim", "--events", "jsonl",
        ])
        assert code == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()
                  if line.startswith("{")]
        kinds = [event["event"] for event in events]
        assert "target_started" in kinds
        assert "target_finished" in kinds
        [report_event] = [
            e for e in events if e["event"] == "cross_validation_report"
        ]
        report = CrossValidationReport.from_dict(report_event["report"])
        assert report.app == "weborf"
        assert report.agrees
        assert report.to_dict() == report_event["report"]

    def test_compare_writes_report_json(self, tmp_path, capsys):
        import json

        from repro.report import CrossValidationReport

        path = tmp_path / "report.json"
        code = main([
            "compare", "--app", "weborf", "--workload", "health",
            "--backends", "appsim", "--report", str(path),
        ])
        assert code == 0
        assert "report saved to" in capsys.readouterr().out
        report = CrossValidationReport.from_dict(
            json.loads(path.read_text())
        )
        assert report.targets == ("appsim",)


class TestPlan:
    def test_plan_named_os(self, capsys):
        assert main(["plan", "--os", "unikraft"]) == 0
        out = capsys.readouterr().out
        assert "unikraft: step-by-step support plan" in out
        assert "+ mongodb" in out

    def test_plan_unknown_os(self, capsys):
        assert main(["plan", "--os", "templeos"]) == 2

    def test_plan_from_csv(self, tmp_path, capsys):
        csv = tmp_path / "mini-os.csv"
        csv.write_text("read\nwrite\nmmap\n")
        assert main(["plan", "--support-csv", str(csv), "--os", "mini"]) == 0
        out = capsys.readouterr().out
        assert "mini: step-by-step support plan" in out

    def test_plan_with_names(self, capsys):
        assert main(["plan", "--os", "kerla", "--names"]) == 0
        assert "mongodb" in capsys.readouterr().out


class TestStudies:
    @pytest.mark.parametrize("study", ["table3", "table4", "fig8"])
    def test_cheap_studies(self, study, capsys):
        assert main(["study", study]) == 0
        assert capsys.readouterr().out.strip()

    def test_table4_values(self, capsys):
        main(["study", "table4"])
        out = capsys.readouterr().out
        assert "28 invocations" in out

    def test_fig4(self, capsys):
        assert main(["study", "fig4"]) == 0
        assert "mean avoidable" in capsys.readouterr().out

    def test_fig5_parallel_jobs(self, capsys):
        assert main(["study", "fig5", "--jobs", "4"]) == 0
        assert capsys.readouterr().out.strip()

    def test_jobs_noop_studies_warn(self, capsys):
        assert main(["study", "table3", "--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert "--jobs has no effect" in captured.err
        assert captured.out.strip()


class TestMisc:
    def test_corpus_listing(self, capsys):
        assert main(["corpus", "--size", "20"]) == 0
        out = capsys.readouterr().out
        assert "redis" in out
        assert "20 applications" in out

    def test_db_inspect(self, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        main(["analyze", "--app", "weborf", "--workload", "health",
              "--output", str(out_path)])
        capsys.readouterr()
        assert main(["db", str(out_path)]) == 0
        assert "weborf" in capsys.readouterr().out

    def test_db_merge(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["analyze", "--app", "weborf", "--workload", "health",
              "--output", str(a)])
        main(["analyze", "--app", "iperf3", "--workload", "health",
              "--output", str(b)])
        capsys.readouterr()
        assert main(["db", str(a), "--merge", str(b)]) == 0
        from repro.db import Database

        assert len(Database.load(a)) == 2

    def test_scan(self, compiled_syscall_binary, capsys):
        assert main(["scan", compiled_syscall_binary]) == 0
        out = capsys.readouterr().out
        assert "syscalls at" in out

    def test_study_pseudo(self, capsys):
        assert main(["study", "pseudo"]) == 0
        assert "/dev/urandom" in capsys.readouterr().out

    @pytest.mark.ptrace
    @pytest.mark.slow
    def test_analyze_exec_real_binary(self, capsys):
        code = main([
            "analyze", "--replicas", "1", "--exec", "/bin/echo", "cli",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "app: /bin/echo" in out
        assert "required (" in out


class TestCacheOps:
    """The ``loupe cache`` group: stats, compact, gc, migrate."""

    def _warm(self, path):
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache", path]) == 0

    def test_stats_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "stats", path]) == 0
        out = capsys.readouterr().out
        assert "backend: jsonl" in out
        assert "stale_records: 0" in out
        assert "entries:" in out

    def test_compact_reports_outcome(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "compact", path]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_gc_requires_sqlite(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "gc", path, "--max-entries", "5"]) == 2
        assert "migrate" in capsys.readouterr().err

    def test_migrate_then_warm_sqlite(self, tmp_path, capsys):
        jsonl = str(tmp_path / "runs.jsonl")
        sqlite = str(tmp_path / "runs.sqlite")
        self._warm(jsonl)
        capsys.readouterr()
        assert main(["cache", "migrate", jsonl, sqlite]) == 0
        assert "migrated" in capsys.readouterr().out
        self._warm(sqlite)
        out = capsys.readouterr().out
        assert "from the persistent cache" in out
        assert "0 executed" in out
        assert main(["cache", "gc", sqlite, "--max-entries", "5"]) == 0
        assert "evicted" in capsys.readouterr().out

    def test_analyze_sqlite_run_cache_with_cap(self, tmp_path, capsys):
        path = str(tmp_path / "runs.sqlite")
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache", path,
                     "--run-cache-max-entries", "25"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", path]) == 0
        out = capsys.readouterr().out
        assert "backend: sqlite" in out

    def test_analyze_max_entries_rejected_on_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache", path,
                     "--run-cache-max-entries", "25"]) == 2
        assert "sqlite" in capsys.readouterr().err

    def test_cache_ops_missing_path_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nothere.sqlite")
        for argv in (["cache", "stats", missing],
                     ["cache", "compact", missing],
                     ["cache", "gc", missing, "--max-entries", "5"],
                     ["cache", "migrate", missing,
                      str(tmp_path / "dst.sqlite")]):
            assert main(argv) == 2
            assert "no run-cache store" in capsys.readouterr().err
        # A typo'd path must not leave a silently-created empty store.
        assert not (tmp_path / "nothere.sqlite").exists()

    def test_analyze_max_entries_without_run_cache_rejected(self, capsys):
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache-max-entries", "25"]) == 2
        assert "requires --run-cache" in capsys.readouterr().err

    def test_cache_stats_mis_extensioned_file_exit_2(self, tmp_path,
                                                     capsys):
        path = tmp_path / "runs.db"
        path.write_text('{"not": "a database"}\n')
        assert main(["cache", "stats", str(path)]) == 2
        assert "not a SQLite database" in capsys.readouterr().err


class TestLint:
    def test_lint_single_clean_app(self, capsys):
        assert main(["lint", "--app", "weborf"]) == 0
        out = capsys.readouterr().out
        assert "lint: 1 app(s) checked, 0 error(s), 0 warning(s)" in out

    def test_lint_json_format(self, capsys):
        import json

        assert main(["lint", "--app", "weborf", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["apps_checked"] == 1
        assert payload["findings"] == []
        assert payload["counts"] == {"error": 0, "warning": 0}

    def test_lint_planted_violation_gates(self, capsys, monkeypatch):
        import json

        from repro.appsim.corpus import HANDBUILT, build

        bad = build("weborf")
        extra = dict(bad.program.static_extra)
        extra["binary"] = extra.get("binary", frozenset()) | {"frobnicate"}
        bad = dataclasses.replace(
            bad, program=dataclasses.replace(bad.program, static_extra=extra)
        )
        monkeypatch.setitem(HANDBUILT, "badapp", lambda: bad)
        assert main(["lint", "--app", "badapp", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1
        assert payload["findings"][0]["rule"] == "unknown-syscall"
        assert "frobnicate" in payload["findings"][0]["message"]

    def test_lint_select_and_ignore(self, capsys, monkeypatch):
        from repro.appsim.corpus import HANDBUILT, build

        bad = build("weborf")
        extra = dict(bad.program.static_extra)
        extra["binary"] = extra.get("binary", frozenset()) | {"frobnicate"}
        bad = dataclasses.replace(
            bad, program=dataclasses.replace(bad.program, static_extra=extra)
        )
        monkeypatch.setitem(HANDBUILT, "badapp", lambda: bad)
        assert main(["lint", "--app", "badapp",
                     "--ignore", "unknown-syscall"]) == 0
        capsys.readouterr()
        assert main(["lint", "--app", "badapp",
                     "--select", "dead-branch"]) == 0

    def test_lint_unknown_rule_exits_2(self, capsys):
        assert main(["lint", "--app", "weborf", "--select", "nope"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_lint_unknown_app_exits_2(self, capsys):
        assert main(["lint", "--app", "doom"]) == 2
        err = capsys.readouterr().err
        assert "doom" in err
        assert "weborf" in err

    def test_lint_database_audit(self, tmp_path, capsys):
        from repro.api.session import AnalysisRequest, LoupeSession

        session = LoupeSession()
        session.analyze(AnalysisRequest(app="weborf", workload="health"))
        path = tmp_path / "loupedb.json"
        session.database.save(path)
        assert main(["lint", "--app", "weborf", "--db", str(path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_lint_missing_database_exits_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nothere.json")
        assert main(["lint", "--app", "weborf", "--db", missing]) == 2
        assert capsys.readouterr().err

    def test_lint_unsatisfiable_plan_gates(self, tmp_path, capsys):
        plan = tmp_path / "tiny.csv"
        plan.write_text("read\nwrite\n")
        assert main(["lint", "--app", "weborf", "--plan", str(plan),
                     "--workload", "health"]) == 1
        out = capsys.readouterr().out
        assert "unsatisfiable-plan" in out
