"""Tests for the ``loupe`` command-line interface."""

import pytest

from repro.cli import main


class TestAnalyze:
    def test_analyze_sim_app(self, capsys):
        code = main(["analyze", "--app", "weborf", "--workload", "health"])
        assert code == 0
        out = capsys.readouterr().out
        assert "app: weborf" in out
        assert "required (" in out

    def test_analyze_unknown_app(self, capsys):
        assert main(["analyze", "--app", "doom"]) == 2

    def test_analyze_parallel_jobs(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--jobs", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "app: weborf" in out
        assert "engine:" in out

    def test_analyze_no_cache(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--no-cache",
        ])
        assert code == 0
        assert "0 cache hit(s)" in capsys.readouterr().out

    def test_analyze_rejects_nonpositive_replicas(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["analyze", "--app", "weborf", "--replicas", "0"])
        assert excinfo.value.code == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_analyze_explicit_backend(self, capsys):
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--backend", "appsim",
        ])
        assert code == 0
        assert "app: weborf" in capsys.readouterr().out

    def test_analyze_exec_with_appsim_backend_rejected(self, capsys):
        code = main([
            "analyze", "--backend", "appsim", "--exec", "/bin/true",
        ])
        assert code == 2
        assert "--exec requires" in capsys.readouterr().err

    def test_analyze_unknown_backend(self, capsys):
        assert main(["analyze", "--app", "weborf",
                     "--backend", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown backend 'bogus'" in err
        assert "available:" in err
        assert "appsim" in err

    def test_analyze_events_jsonl(self, capsys):
        import json

        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--events", "jsonl",
        ])
        assert code == 0
        out = capsys.readouterr().out
        events = [json.loads(line) for line in out.splitlines()
                  if line.startswith("{")]
        assert events, "expected at least one JSON event line"
        kinds = [event["event"] for event in events]
        assert kinds[0] == "analysis_started"
        assert "feature_probed" in kinds
        assert kinds[-1] == "analysis_finished"
        # the human report still follows the event stream
        assert "app: weborf" in out

    def test_analyze_saves_database(self, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        code = main([
            "analyze", "--app", "weborf", "--workload", "health",
            "--output", str(out_path),
        ])
        assert code == 0
        from repro.db import Database

        assert len(Database.load(out_path)) == 1


class TestPlan:
    def test_plan_named_os(self, capsys):
        assert main(["plan", "--os", "unikraft"]) == 0
        out = capsys.readouterr().out
        assert "unikraft: step-by-step support plan" in out
        assert "+ mongodb" in out

    def test_plan_unknown_os(self, capsys):
        assert main(["plan", "--os", "templeos"]) == 2

    def test_plan_from_csv(self, tmp_path, capsys):
        csv = tmp_path / "mini-os.csv"
        csv.write_text("read\nwrite\nmmap\n")
        assert main(["plan", "--support-csv", str(csv), "--os", "mini"]) == 0
        out = capsys.readouterr().out
        assert "mini: step-by-step support plan" in out

    def test_plan_with_names(self, capsys):
        assert main(["plan", "--os", "kerla", "--names"]) == 0
        assert "mongodb" in capsys.readouterr().out


class TestStudies:
    @pytest.mark.parametrize("study", ["table3", "table4", "fig8"])
    def test_cheap_studies(self, study, capsys):
        assert main(["study", study]) == 0
        assert capsys.readouterr().out.strip()

    def test_table4_values(self, capsys):
        main(["study", "table4"])
        out = capsys.readouterr().out
        assert "28 invocations" in out

    def test_fig4(self, capsys):
        assert main(["study", "fig4"]) == 0
        assert "mean avoidable" in capsys.readouterr().out

    def test_fig5_parallel_jobs(self, capsys):
        assert main(["study", "fig5", "--jobs", "4"]) == 0
        assert capsys.readouterr().out.strip()

    def test_jobs_noop_studies_warn(self, capsys):
        assert main(["study", "table3", "--jobs", "4"]) == 0
        captured = capsys.readouterr()
        assert "--jobs has no effect" in captured.err
        assert captured.out.strip()


class TestMisc:
    def test_corpus_listing(self, capsys):
        assert main(["corpus", "--size", "20"]) == 0
        out = capsys.readouterr().out
        assert "redis" in out
        assert "20 applications" in out

    def test_db_inspect(self, tmp_path, capsys):
        out_path = tmp_path / "db.json"
        main(["analyze", "--app", "weborf", "--workload", "health",
              "--output", str(out_path)])
        capsys.readouterr()
        assert main(["db", str(out_path)]) == 0
        assert "weborf" in capsys.readouterr().out

    def test_db_merge(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        main(["analyze", "--app", "weborf", "--workload", "health",
              "--output", str(a)])
        main(["analyze", "--app", "iperf3", "--workload", "health",
              "--output", str(b)])
        capsys.readouterr()
        assert main(["db", str(a), "--merge", str(b)]) == 0
        from repro.db import Database

        assert len(Database.load(a)) == 2

    def test_scan(self, compiled_syscall_binary, capsys):
        assert main(["scan", compiled_syscall_binary]) == 0
        out = capsys.readouterr().out
        assert "syscalls at" in out

    def test_study_pseudo(self, capsys):
        assert main(["study", "pseudo"]) == 0
        assert "/dev/urandom" in capsys.readouterr().out

    @pytest.mark.ptrace
    @pytest.mark.slow
    def test_analyze_exec_real_binary(self, capsys):
        code = main([
            "analyze", "--replicas", "1", "--exec", "/bin/echo", "cli",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "app: /bin/echo" in out
        assert "required (" in out


class TestCacheOps:
    """The ``loupe cache`` group: stats, compact, gc, migrate."""

    def _warm(self, path):
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache", path]) == 0

    def test_stats_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "stats", path]) == 0
        out = capsys.readouterr().out
        assert "backend: jsonl" in out
        assert "stale_records: 0" in out
        assert "entries:" in out

    def test_compact_reports_outcome(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "compact", path]) == 0
        assert "compacted" in capsys.readouterr().out

    def test_gc_requires_sqlite(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        self._warm(path)
        capsys.readouterr()
        assert main(["cache", "gc", path, "--max-entries", "5"]) == 2
        assert "migrate" in capsys.readouterr().err

    def test_migrate_then_warm_sqlite(self, tmp_path, capsys):
        jsonl = str(tmp_path / "runs.jsonl")
        sqlite = str(tmp_path / "runs.sqlite")
        self._warm(jsonl)
        capsys.readouterr()
        assert main(["cache", "migrate", jsonl, sqlite]) == 0
        assert "migrated" in capsys.readouterr().out
        self._warm(sqlite)
        out = capsys.readouterr().out
        assert "from the persistent cache" in out
        assert "0 executed" in out
        assert main(["cache", "gc", sqlite, "--max-entries", "5"]) == 0
        assert "evicted" in capsys.readouterr().out

    def test_analyze_sqlite_run_cache_with_cap(self, tmp_path, capsys):
        path = str(tmp_path / "runs.sqlite")
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache", path,
                     "--run-cache-max-entries", "25"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", path]) == 0
        out = capsys.readouterr().out
        assert "backend: sqlite" in out

    def test_analyze_max_entries_rejected_on_jsonl(self, tmp_path, capsys):
        path = str(tmp_path / "runs.jsonl")
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache", path,
                     "--run-cache-max-entries", "25"]) == 2
        assert "sqlite" in capsys.readouterr().err

    def test_cache_ops_missing_path_exit_2(self, tmp_path, capsys):
        missing = str(tmp_path / "nothere.sqlite")
        for argv in (["cache", "stats", missing],
                     ["cache", "compact", missing],
                     ["cache", "gc", missing, "--max-entries", "5"],
                     ["cache", "migrate", missing,
                      str(tmp_path / "dst.sqlite")]):
            assert main(argv) == 2
            assert "no run-cache store" in capsys.readouterr().err
        # A typo'd path must not leave a silently-created empty store.
        assert not (tmp_path / "nothere.sqlite").exists()

    def test_analyze_max_entries_without_run_cache_rejected(self, capsys):
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--run-cache-max-entries", "25"]) == 2
        assert "requires --run-cache" in capsys.readouterr().err

    def test_cache_stats_mis_extensioned_file_exit_2(self, tmp_path,
                                                     capsys):
        path = tmp_path / "runs.db"
        path.write_text('{"not": "a database"}\n')
        assert main(["cache", "stats", str(path)]) == 2
        assert "not a SQLite database" in capsys.readouterr().err
