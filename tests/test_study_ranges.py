"""Tests for the low/high syscall-range study (Section 5.2)."""

import pytest

from repro.study.ranges import range_study, render_ranges


@pytest.fixture(scope="module")
def study(bench_results):
    return range_study(bench_results)


class TestRangeInsight:
    def test_modern_syscalls_easier_to_avoid(self, study):
        """Section 5.2: higher-range syscalls are better stub/fake
        candidates — they map to more recent, less critical features."""
        assert study.modern_syscalls_easier_to_avoid

    def test_low_range_dominates_usage(self, study):
        """Low-range syscalls are 'the majority of system calls
        detected by all analysis methods'."""
        assert study.low.used > study.high.used

    def test_buckets_partition(self, study, bench_results):
        union = set()
        for result in bench_results:
            union |= result.traced_syscalls()
        assert study.low.used + study.high.used == len(union)

    def test_counts_bounded(self, study):
        for bucket in (study.low, study.high):
            assert 0 <= bucket.always_avoidable <= bucket.used
            assert 0 <= bucket.required_somewhere <= bucket.used

    def test_custom_threshold(self, bench_results):
        low_split = range_study(bench_results, threshold=63)
        assert low_split.low.used < low_split.high.used or True
        assert low_split.threshold == 63

    def test_render(self, study):
        text = render_ranges(study)
        assert "Syscall-range avoidability" in text
        assert "better stub/fake candidates" in text
