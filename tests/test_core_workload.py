"""Tests for workload descriptions."""

import pytest

from repro.core.workload import (
    CommandWorkload,
    SimWorkload,
    WorkloadKind,
    benchmark,
    health_check,
    test_suite,
)
from repro.errors import WorkloadError


class TestConstructors:
    def test_health_check(self):
        workload = health_check("health")
        assert workload.kind is WorkloadKind.HEALTH_CHECK
        assert workload.features_exercised == frozenset({"core"})
        assert not workload.measures_performance

    def test_benchmark_measures_performance(self):
        workload = benchmark("bench", metric_name="requests/s")
        assert workload.kind is WorkloadKind.BENCHMARK
        assert workload.measures_performance
        assert workload.metric_name == "requests/s"

    def test_test_suite_features(self):
        workload = test_suite("suite", features=("core", "persistence"))
        assert workload.kind is WorkloadKind.TEST_SUITE
        assert workload.features_exercised == frozenset({"core", "persistence"})


class TestValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(WorkloadError):
            health_check("")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(WorkloadError):
            SimWorkload(name="x", kind=WorkloadKind.BENCHMARK, timeout_s=0)

    def test_empty_feature_set_rejected(self):
        with pytest.raises(WorkloadError):
            SimWorkload(
                name="x",
                kind=WorkloadKind.BENCHMARK,
                features_exercised=frozenset(),
            )

    def test_command_workload_needs_argv(self):
        with pytest.raises(WorkloadError):
            CommandWorkload(name="x", kind=WorkloadKind.HEALTH_CHECK, argv=())


class TestCommandWorkload:
    def test_defaults(self):
        workload = CommandWorkload(
            name="echo", kind=WorkloadKind.HEALTH_CHECK, argv=("/bin/echo", "hi")
        )
        assert workload.expect_exit_code == 0
        assert workload.test_argv is None
        assert workload.binaries == frozenset()

    def test_whitelist(self):
        workload = CommandWorkload(
            name="suite",
            kind=WorkloadKind.TEST_SUITE,
            argv=("make", "test"),
            binaries=frozenset({"/usr/bin/myapp"}),
        )
        assert "/usr/bin/myapp" in workload.binaries
