"""Tests for the libc models against the paper's Table 4 facts."""

from collections import Counter

import pytest

from repro.appsim.libc import (
    GLIBC_228_DYNAMIC,
    GLIBC_228_STATIC,
    MUSL_122_DYNAMIC,
    MUSL_122_STATIC,
    LibcModel,
)


def _invocations(libc):
    counts = Counter()
    for op in libc.init_ops():
        counts[op.syscall] += op.count
    return counts


class TestInitSequences:
    def test_glibc_dynamic_counts(self):
        """Table 4: glibc 2.28 dynamic init = 26 invocations pre-main."""
        counts = _invocations(GLIBC_228_DYNAMIC)
        assert counts["execve"] == 1
        assert counts["brk"] == 3
        assert counts["mmap"] == 7
        assert counts["mprotect"] == 4
        assert counts["openat"] == 2
        assert counts["fstat"] == 3
        assert counts["close"] == 2
        assert sum(counts.values()) == 26

    def test_musl_dynamic_counts(self):
        """Table 4: musl 1.2.2 dynamic init = 9 invocations pre-main."""
        counts = _invocations(MUSL_122_DYNAMIC)
        assert counts["brk"] == 2
        assert counts["mmap"] == 1
        assert counts["set_tid_address"] == 1
        assert counts["ioctl"] == 1
        assert sum(counts.values()) == 9

    def test_glibc_static_counts(self):
        counts = _invocations(GLIBC_228_STATIC)
        assert counts["brk"] == 4
        assert counts["uname"] == 1
        assert counts["readlink"] == 1
        assert sum(counts.values()) == 9

    def test_musl_static_counts(self):
        counts = _invocations(MUSL_122_STATIC)
        assert sum(counts.values()) == 4
        assert set(counts) == {"execve", "arch_prctl", "ioctl", "set_tid_address"}

    def test_musl_avoids_the_loader_dance(self):
        """Section 5.6: musl maps itself via the linker — no openat/read."""
        musl = set(_invocations(MUSL_122_DYNAMIC))
        assert "openat" not in musl
        assert "read" not in musl


class TestWrapperChoices:
    def test_stdio_write_choice(self):
        assert GLIBC_228_DYNAMIC.stdio_write_syscall() == "write"
        assert MUSL_122_DYNAMIC.stdio_write_syscall() == "writev"

    def test_runtime_ops_glibc(self):
        names = [op.syscall for op in GLIBC_228_DYNAMIC.runtime_ops()]
        assert "set_tid_address" in names
        assert "set_robust_list" in names
        assert "prlimit64" in names
        assert "exit_group" in names

    def test_runtime_ops_musl_minimal(self):
        """musl registered its TLS during init already; only process
        teardown remains."""
        names = [op.syscall for op in MUSL_122_DYNAMIC.runtime_ops()]
        assert names == ["exit_group"]


class TestValidation:
    def test_unknown_vendor(self):
        with pytest.raises(ValueError):
            LibcModel("dietlibc", "0.34")

    def test_unknown_linking(self):
        with pytest.raises(ValueError):
            LibcModel("glibc", "2.28", "holographic")

    def test_brk_fallback_parameterization(self):
        libc = LibcModel("glibc", "2.28", "dynamic", brk_fallback_mem_frac=0.17)
        brk_ops = [op for op in libc.init_ops() if op.syscall == "brk"]
        assert brk_ops[0].on_stub.shift.mem_frac == pytest.approx(0.17)
