"""Tests for the ASCII figure rendering."""

import pytest

from repro.report import render_bar_chart, render_xy_plot


class TestXyPlot:
    def test_basic_plot_structure(self):
        text = render_xy_plot(
            {"a": [(0, 0), (10, 10)], "b": [(0, 10), (10, 0)]},
            width=40, height=10, x_label="x", y_label="y",
        )
        lines = text.splitlines()
        assert len(lines) == 10 + 3          # canvas + axis + labels + legend
        assert "* a" in lines[-1]
        assert "o b" in lines[-1]
        assert "(y: y)" in lines[-1]

    def test_empty(self):
        assert render_xy_plot({}) == "(no data)"

    def test_monotone_series_renders_extremes(self):
        text = render_xy_plot({"s": [(0, 0), (100, 50)]}, width=30, height=8)
        first_line = text.splitlines()[0]
        last_canvas_line = text.splitlines()[7]
        assert "*" in first_line          # y max plotted at the top
        assert "*" in last_canvas_line    # y min plotted at the bottom

    def test_degenerate_single_point(self):
        text = render_xy_plot({"p": [(5, 5)]})
        assert "*" in text


class TestRealCurves:
    def test_effort_curves(self, full_corpus):
        from repro.plans import run_effort_study
        from repro.report import render_effort_curves

        study = run_effort_study(full_corpus[:62])
        text = render_effort_curves(study)
        assert "loupe" in text and "organic" in text and "naive" in text
        assert "syscalls implemented" in text

    def test_importance_curves(self, bench_results):
        from repro.report import render_importance_curves
        from repro.study.importance import figure3

        text = render_importance_curves(figure3(bench_results))
        assert "naive" in text and "loupe" in text


class TestBarChart:
    def test_bars_scale(self):
        text = render_bar_chart({"big": 100.0, "small": 10.0}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert 1 <= lines[1].count("#") <= 3

    def test_unit_suffix(self):
        text = render_bar_chart({"x": 5.0}, unit="%")
        assert "5%" in text

    def test_empty(self):
        assert render_bar_chart({}) == "(no data)"
