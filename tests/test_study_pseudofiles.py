"""Tests for the pseudo-file usage study (extension)."""

import pytest

from repro.appsim.corpus import cloud_apps, corpus
from repro.study.pseudofiles_study import pseudo_file_study, render_pseudo_files


@pytest.fixture(scope="module")
def study():
    return pseudo_file_study(corpus()[:40])


class TestPseudoFileStudy:
    def test_urandom_is_the_common_case(self, study):
        row = study.row("/dev/urandom")
        assert row.apps_using >= 5
        assert row.filesystem == "/dev"

    def test_most_pseudo_files_avoidable(self, study):
        """Entropy and introspection reads usually fail soft."""
        total_using = sum(r.apps_using for r in study.rows)
        total_requiring = sum(r.apps_requiring for r in study.rows)
        assert total_requiring < total_using * 0.4

    def test_filesystem_classification(self, study):
        by_fs = study.by_filesystem()
        assert set(by_fs) <= {"/proc", "/dev", "/sys"}
        assert by_fs.get("/proc", 0) >= 1

    def test_required_fraction_bounds(self, study):
        for row in study.rows:
            assert 0.0 <= row.required_fraction <= 1.0
            assert row.apps_requiring <= row.apps_using

    def test_unknown_path(self, study):
        with pytest.raises(KeyError):
            study.row("/proc/does/not/exist")

    def test_hand_built_apps_contribute(self):
        small = pseudo_file_study(cloud_apps())
        paths = {row.path for row in small.rows}
        assert "/dev/urandom" in paths                  # redis, sqlite, h2o
        assert "/proc/self/status" in paths             # mongodb
        assert "/proc/cpuinfo" in paths                 # mysql

    def test_render(self, study):
        text = render_pseudo_files(study)
        assert "/dev/urandom" in text
        assert "distinct special files by filesystem" in text
