"""Tests for the backend capability contract (BackendCapabilities)."""

import contextlib
import warnings

import pytest

from repro.appsim.backend import SimBackend
from repro.appsim.corpus import build
from repro.core.engine import ProbeEngine
from repro.core.runner import (
    BackendCapabilities,
    capabilities_of,
    process_shardable,
)
from repro.core.workload import benchmark
from repro.core.policy import stubbing
from repro.ptracer.backend import PtraceBackend


@contextlib.contextmanager
def _no_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        yield


class TestDescriptor:
    def test_defaults_are_all_false(self):
        caps = BackendCapabilities()
        assert not any(caps.to_dict().values())

    def test_dict_round_trip(self):
        caps = BackendCapabilities(
            deterministic=True, supports_pseudo_files=True,
            real_execution=True,
        )
        assert BackendCapabilities.from_dict(caps.to_dict()) == caps

    def test_from_dict_ignores_unknown_fields(self):
        caps = BackendCapabilities.from_dict(
            {"deterministic": 1, "from_the_future": True}
        )
        assert caps == BackendCapabilities(deterministic=True)


class TestBuiltinContracts:
    def test_sim_backend_contract(self):
        backend = build("weborf").backend()
        with _no_warnings():
            caps = capabilities_of(backend)
        assert caps.deterministic
        assert caps.parallel_safe
        assert caps.process_safe
        assert caps.supports_pseudo_files
        assert caps.supports_subfeatures
        assert not caps.real_execution

    def test_sim_backend_contract_follows_instance_flags(self):
        backend = build("weborf").backend()
        backend.process_safe = False
        assert not capabilities_of(backend).process_safe
        assert not process_shardable(backend)

    def test_ptrace_backend_contract(self):
        # Bypass __post_init__ (which probes live ptrace availability):
        # the contract is pure attribute logic.
        backend = object.__new__(PtraceBackend)
        backend.subfeature_level = True
        backend.track_pseudofiles = False
        backend.deterministic = False
        backend.parallel_safe = False
        backend.process_safe = False
        caps = backend.capabilities()
        assert caps.real_execution
        assert caps.supports_subfeatures
        assert not caps.supports_pseudo_files
        assert not caps.deterministic
        assert not caps.parallel_safe
        assert not caps.process_safe


class TestLegacyShim:
    def test_legacy_attributes_synthesize_descriptor_and_warn(self):
        class _Legacy:
            name = "legacy"
            deterministic = True
            parallel_safe = True

        with pytest.warns(DeprecationWarning, match="capabilities"):
            caps = capabilities_of(_Legacy())
        assert caps == BackendCapabilities(
            deterministic=True, parallel_safe=True
        )

    def test_undeclared_backend_gets_no_capabilities_silently(self):
        class _Bare:
            name = "bare"

        with _no_warnings():
            caps = capabilities_of(_Bare())
        assert caps == BackendCapabilities()

    def test_wrong_return_type_rejected(self):
        class _Broken:
            name = "broken"

            def capabilities(self):
                return {"deterministic": True}

        with pytest.raises(TypeError, match="BackendCapabilities"):
            capabilities_of(_Broken())

    def test_descriptor_attribute_accepted(self):
        """Declaring the descriptor as a plain attribute (natural
        dataclass style) is an honest contract and must not be
        silently read as 'no capabilities'."""

        class _AttrStyle:
            name = "attr-style"
            capabilities = BackendCapabilities(
                deterministic=True, parallel_safe=True
            )

        with _no_warnings():
            caps = capabilities_of(_AttrStyle())
        assert caps.deterministic and caps.parallel_safe

    def test_non_callable_non_descriptor_attribute_rejected(self):
        class _Broken:
            name = "broken"
            capabilities = {"deterministic": True}

        with pytest.raises(TypeError, match="must be a method"):
            capabilities_of(_Broken())

    def test_process_shardable_honors_prepared_descriptor(self):
        backend = build("weborf").backend()
        assert process_shardable(
            backend, capabilities=BackendCapabilities(process_safe=True)
        )
        assert not process_shardable(
            backend, capabilities=BackendCapabilities()
        )


class TestEngineIntegration:
    def test_engine_resolves_capabilities_once_per_backend(self):
        class _Counting:
            name = "sim:caps-counting"

            def __init__(self):
                self.resolutions = 0

            def capabilities(self):
                self.resolutions += 1
                return BackendCapabilities(
                    deterministic=True, parallel_safe=True
                )

            def run(self, workload, policy, *, replica=0):
                from collections import Counter

                from repro.core.runner import RunResult

                return RunResult(success=True, traced=Counter({"read": 1}))

        backend = _Counting()
        with ProbeEngine(parallel=2) as engine:
            for _ in range(3):
                engine.run_replicas(
                    backend, benchmark("b", "m"), stubbing("close"), 2
                )
            assert backend.resolutions == 1
            engine.reset()
            engine.run_replicas(
                backend, benchmark("b", "m"), stubbing("close"), 2
            )
            assert backend.resolutions == 2  # reset dropped the memo

    def test_no_capability_sniffing_outside_the_shim(self):
        """The acceptance gate: getattr-style capability sniffing may
        exist only inside the legacy shim (capabilities_of)."""
        import pathlib
        import re

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        pattern = re.compile(
            r"getattr\([^)]*(?:process_safe|parallel_safe|deterministic)"
        )
        offenders = []
        for path in src.rglob("*.py"):
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if pattern.search(line):
                    offenders.append(f"{path}:{number}: {line.strip()}")
        allowed = "runner.py"
        real = [o for o in offenders if allowed not in o]
        assert not real, real

    def test_cacheability_follows_contract(self):
        """A deterministic contract caches; a silent backend never does."""
        from collections import Counter

        from repro.core.runner import RunResult

        class _Backend:
            name = "sim:contract"

            def __init__(self, deterministic):
                self._deterministic = deterministic
                self.calls = 0

            def capabilities(self):
                return BackendCapabilities(
                    deterministic=self._deterministic
                )

            def run(self, workload, policy, *, replica=0):
                self.calls += 1
                return RunResult(success=True, traced=Counter({"read": 1}))

        cached = _Backend(deterministic=True)
        engine = ProbeEngine()
        engine.run(cached, benchmark("b", "m"), stubbing("close"))
        engine.run(cached, benchmark("b", "m"), stubbing("close"))
        assert cached.calls == 1

        uncached = _Backend(deterministic=False)
        engine.reset()
        engine.run(uncached, benchmark("b", "m"), stubbing("close"))
        engine.run(uncached, benchmark("b", "m"), stubbing("close"))
        assert uncached.calls == 2

    def test_sim_backend_is_an_execution_backend(self):
        from repro.core.runner import ExecutionBackend

        assert isinstance(SimBackend(build("weborf").program), ExecutionBackend)

    def test_unsupported_observation_modes_warn(self):
        """pseudo_files/subfeature_level on a backend whose contract
        lacks the matching supports_* capability must signal instead
        of silently finding nothing."""
        from repro.core.analyzer import Analyzer, AnalyzerConfig
        from repro.core.workload import health_check

        app = build("weborf")
        backend = app.backend()

        class Limited:
            name = backend.name

            def capabilities(self):
                return BackendCapabilities(
                    deterministic=True, parallel_safe=True,
                    supports_pseudo_files=False,
                    supports_subfeatures=False,
                )

            def run(self, workload, policy, *, replica=0):
                return backend.run(workload, policy, replica=replica)

        with pytest.warns(UserWarning, match="pseudo-file"):
            Analyzer(AnalyzerConfig(pseudo_files=True)).analyze(
                Limited(), app.workload("health")
            )
        with pytest.warns(UserWarning, match="sub-feature"):
            Analyzer(AnalyzerConfig(subfeature_level=True)).analyze(
                Limited(), app.workload("health")
            )
        # Supporting backends stay silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            Analyzer(AnalyzerConfig(pseudo_files=True)).analyze(
                app.backend(), app.workload("health")
            )
        # Legacy-shim backends get the benefit of the doubt: the shim
        # cannot express supports_*, so no misleading warning fires.
        class Legacy:
            name = backend.name
            deterministic = True
            parallel_safe = True

            def run(self, workload, policy, *, replica=0):
                return backend.run(workload, policy, replica=replica)

        with warnings.catch_warnings():
            warnings.simplefilter("error", UserWarning)
            Analyzer(AnalyzerConfig(pseudo_files=True)).analyze(
                Legacy(), app.workload("health")
            )

    def test_ptrace_contract_follows_instance_flags(self):
        backend = object.__new__(PtraceBackend)
        backend.subfeature_level = True
        backend.track_pseudofiles = True
        backend.deterministic = False
        backend.process_safe = False
        backend.parallel_safe = True  # embedder tuning: contract follows
        assert backend.capabilities().parallel_safe
