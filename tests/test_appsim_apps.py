"""Tests for the hand-modeled applications: paper-calibrated behavior.

Each test pins a fact the paper states about a specific application;
ranges are used where the paper gives approximate values.
"""

import pytest

from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.study.base import analyze_app


@pytest.fixture(scope="module")
def by_name(cloud_app_set):
    return {app.name: app for app in cloud_app_set}


def _analysis(app, workload):
    return analyze_app(app, workload)


class TestRedisCalibration:
    def test_bench_required_about_twenty(self, by_name):
        """Section 1/5.1: ~20 syscalls required for redis-benchmark."""
        result = _analysis(by_name["redis"], "bench")
        assert 14 <= len(result.required_syscalls()) <= 24

    def test_suite_requires_more(self, by_name):
        bench = _analysis(by_name["redis"], "bench")
        suite = _analysis(by_name["redis"], "suite")
        assert len(suite.required_syscalls()) > len(bench.required_syscalls())
        assert 30 <= len(suite.required_syscalls()) <= 48

    def test_suite_traced_about_sixtyeight(self, by_name):
        result = _analysis(by_name["redis"], "suite")
        assert 60 <= len(result.traced_syscalls()) <= 78

    def test_static_binary_103(self, by_name):
        assert len(by_name["redis"].program.static_view("binary")) == 103

    def test_more_than_half_bench_avoidable(self, by_name):
        """Section 1: more than half of redis-benchmark syscalls can be
        stubbed or faked."""
        result = _analysis(by_name["redis"], "bench")
        assert len(result.avoidable_syscalls()) > len(result.traced_syscalls()) / 2

    def test_sysinfo_ignored(self, by_name):
        """Section 5.2: Redis ignores sysinfo failure."""
        result = _analysis(by_name["redis"], "bench")
        assert result.features["sysinfo"].decision.can_stub

    def test_prlimit_safe_default(self, by_name):
        """Figure 6a: getrlimit failure -> assume 1024 descriptors."""
        result = _analysis(by_name["redis"], "bench")
        assert result.features["prlimit64"].decision.can_stub

    def test_futex_fake_flagged(self, by_name):
        """Table 2: faking futex degrades perf 66% and doubles fds."""
        result = _analysis(by_name["redis"], "bench")
        futex = result.features["futex"]
        assert futex.fake_impact is not None
        assert futex.fake_impact.perf.significant
        assert futex.fake_impact.perf.delta == pytest.approx(-0.66, abs=0.05)
        assert futex.fake_impact.fd.delta == pytest.approx(0.94, abs=0.05)

    def test_futex_required_under_suite(self, by_name):
        result = _analysis(by_name["redis"], "suite")
        assert "futex" in result.required_syscalls()

    def test_pipe2_breaks_persistence_only(self, by_name):
        bench = _analysis(by_name["redis"], "bench")
        assert bench.features["pipe2"].decision.avoidable
        suite = _analysis(by_name["redis"], "suite")
        assert suite.features["pipe2"].decision.required


class TestNginxCalibration:
    def test_prctl_fake_only(self, by_name):
        """Figure 6b: prctl(PR_SET_KEEPCAPS) fatal on stub, fakeable."""
        result = _analysis(by_name["nginx"], "bench")
        prctl = result.features["prctl"].decision
        assert not prctl.can_stub
        assert prctl.can_fake

    def test_write_boosts_benchmark(self, by_name):
        """Table 2: stubbing write skips access logs: +15% throughput."""
        result = _analysis(by_name["nginx"], "bench")
        write = result.features["write"]
        assert write.decision.avoidable
        assert write.stub_impact.perf.delta == pytest.approx(0.15, abs=0.03)

    def test_write_required_by_suite(self, by_name):
        result = _analysis(by_name["nginx"], "suite")
        assert "write" in result.required_syscalls()

    def test_sigsuspend_slows_benchmark(self, by_name):
        result = _analysis(by_name["nginx"], "bench")
        impact = result.features["rt_sigsuspend"].stub_impact
        assert impact.perf.delta == pytest.approx(-0.38, abs=0.03)

    def test_clone_fake_costs_memory(self, by_name):
        result = _analysis(by_name["nginx"], "bench")
        clone = result.features["clone"]
        assert not clone.decision.can_stub
        assert clone.decision.can_fake
        assert clone.fake_impact.mem.delta == pytest.approx(0.10, abs=0.03)

    def test_no_futex(self, by_name):
        """Nginx is process-based: no futex in its footprint (Table 3)."""
        result = _analysis(by_name["nginx"], "bench")
        assert "futex" not in result.traced_syscalls()

    def test_sendfile_falls_back(self, by_name):
        result = _analysis(by_name["nginx"], "bench")
        assert result.features["sendfile"].decision.can_stub

    def test_suite_has_lowest_avoidable_fraction(self, by_name, seven_app_set):
        """Section 5.2: Nginx's suite is the least stub/fake tolerant."""
        fractions = {}
        for app in seven_app_set:
            result = _analysis(app, "suite")
            traced = len(result.traced_syscalls())
            fractions[app.name] = len(result.avoidable_syscalls()) / traced
        assert min(fractions, key=fractions.get) == "nginx"


class TestOtherAppFacts:
    def test_sqlite_mremap_fallback(self, by_name):
        """Section 5.2: SQLite re-allocates with mmap when mremap fails."""
        result = _analysis(by_name["sqlite"], "bench")
        assert result.features["mremap"].decision.can_stub

    def test_sqlite_has_no_network(self, by_name):
        result = _analysis(by_name["sqlite"], "bench")
        assert "socket" not in result.traced_syscalls()

    def test_haproxy_most_avoidable_bench(self, by_name, seven_app_set):
        """Section 5.2: HAProxy tops benchmark stub/fake tolerance (65%)."""
        fractions = {}
        for app in seven_app_set:
            result = _analysis(app, "bench")
            fractions[app.name] = (
                len(result.avoidable_syscalls()) / len(result.traced_syscalls())
            )
        assert max(fractions, key=fractions.get) == "haproxy"
        assert fractions["haproxy"] >= 0.55

    def test_webfsd_requires_identity(self, by_name):
        """Table 1: Kerla implements getuid/getgid/geteuid/getegid for
        webfsd."""
        result = _analysis(by_name["webfsd"], "bench")
        required = result.required_syscalls()
        assert {"getuid", "getgid", "geteuid", "getegid"} <= required

    def test_h2o_uses_eventfd2_and_accept4(self, by_name):
        result = _analysis(by_name["h2o"], "bench")
        required = result.required_syscalls()
        assert "eventfd2" in required
        assert "accept4" in required

    def test_mongodb_deep_requirements(self, by_name):
        """Table 1: MongoDB needs mincore, rt_sigtimedwait, timerfd_create,
        flock — every OS unlocks it last."""
        result = _analysis(by_name["mongodb"], "bench")
        required = result.required_syscalls()
        assert {"mincore", "rt_sigtimedwait", "timerfd_create", "flock"} <= required

    def test_mongodb_has_largest_required_set(self, by_name, cloud_app_set):
        sizes = {
            app.name: len(_analysis(app, "bench").required_syscalls())
            for app in cloud_app_set
        }
        assert max(sizes, key=sizes.get) == "mongodb"

    def test_iperf3_brk_memory_effect(self, by_name):
        """Table 2: iPerf3's only impact is brk -> mmap fallback (+11%)."""
        result = _analysis(by_name["iperf3"], "bench")
        brk = result.features["brk"]
        assert brk.decision.can_stub
        assert brk.stub_impact.mem.delta == pytest.approx(0.11, abs=0.02)

    def test_etcd_is_libc_free(self, by_name):
        """Go binary: no brk, no access, raw runtime syscalls."""
        result = _analysis(by_name["etcd"], "bench")
        traced = result.traced_syscalls()
        assert "brk" not in traced
        assert "rt_sigaction" in result.required_syscalls()

    def test_memcached_threading_required(self, by_name):
        result = _analysis(by_name["memcached"], "bench")
        assert {"clone", "futex", "eventfd2"} <= result.required_syscalls()


class TestLibcInfluenceOnServers:
    """Section 5.6 on a full server: the libc choice changes the
    syscall footprint of the very same application."""

    def test_nginx_musl_footprint_differs(self):
        from repro.appsim.apps import nginx as nginx_module
        from repro.appsim.libc import LibcModel

        glibc_build = nginx_module.build("1.20")
        musl_build = nginx_module.build(
            "1.20-musl", libc=LibcModel("musl", "1.2.2", "dynamic")
        )
        glibc_live = glibc_build.program.live_syscalls()
        musl_live = musl_build.program.live_syscalls()
        # musl maps itself via the linker: no openat/read loader dance
        # in init (nginx's own config loading still uses openat).
        assert "set_tid_address" in musl_live
        assert "readlink" not in musl_live
        # glibc registers robust lists; musl does not.
        assert "set_robust_list" in glibc_live
        assert "set_robust_list" not in musl_live

    def test_musl_nginx_still_analyzable(self):
        from repro.appsim.apps import nginx as nginx_module
        from repro.appsim.libc import LibcModel

        app = nginx_module.build(
            "1.20-musl", libc=LibcModel("musl", "1.2.2", "dynamic")
        )
        result = Analyzer(AnalyzerConfig(replicas=3)).analyze(
            app.backend(), app.bench
        )
        assert result.final_run_ok
        assert "writev" in result.required_syscalls()


class TestUniversalInvariants:
    def test_every_app_passes_every_workload_baseline(self, cloud_app_set):
        from repro.core.policy import passthrough

        for app in cloud_app_set:
            for workload_name in ("health", "bench", "suite"):
                run = app.backend().run(
                    app.workload(workload_name), passthrough()
                )
                assert run.success, f"{app.name}/{workload_name} baseline fails"

    def test_required_subset_of_traced(self, cloud_app_set):
        for app in cloud_app_set:
            result = _analysis(app, "bench")
            assert result.required_syscalls() <= result.traced_syscalls()

    def test_static_views_superset_of_traced(self, cloud_app_set):
        for app in cloud_app_set:
            result = _analysis(app, "bench")
            source = app.program.static_view("source")
            binary = app.program.static_view("binary")
            assert result.traced_syscalls() <= source | result.traced_syscalls()
            assert source <= binary

    def test_final_run_confirms(self, cloud_app_set):
        for app in cloud_app_set:
            assert _analysis(app, "bench").final_run_ok, app.name

    def test_workload_accessor_unknown(self, cloud_app_set):
        with pytest.raises(KeyError):
            cloud_app_set[0].workload("fuzzing")
