"""Tests for incremental support-plan generation, including invariants
checked property-style over randomized requirement sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plans.planner import generate_plan, render_plan
from repro.plans.requirements import AppRequirements
from repro.plans.state import SupportState

_POOL = (
    "read write close openat mmap brk futex clone socket bind listen "
    "accept4 epoll_ctl epoll_wait setsockopt uname getpid sysinfo prctl "
    "setsid umask getcwd pipe2 fsync rename unlink getrandom"
).split()


def _record(app, required, stubbable=(), fake_only=()):
    required = frozenset(required)
    stubbable = frozenset(stubbable) - required
    fake_only = frozenset(fake_only) - required - stubbable
    return AppRequirements(
        app=app,
        workload="bench",
        required=required,
        stubbable=stubbable,
        fake_only=fake_only,
        traced=required | stubbable | fake_only,
    )


class TestBasicPlans:
    def test_initially_supported(self):
        state = SupportState("os", implemented={"read", "write"})
        plan = generate_plan(state, [_record("cat", ["read", "write"])])
        assert plan.initially_supported == ("cat",)
        assert not plan.steps

    def test_single_step(self):
        state = SupportState("os", implemented={"read"})
        plan = generate_plan(
            state,
            [_record("app", ["read", "socket"], stubbable=["uname"],
                     fake_only=["prctl"])],
        )
        assert len(plan.steps) == 1
        step = plan.steps[0]
        assert step.implement == ("socket",)
        assert step.stub == ("uname",)
        assert step.fake == ("prctl",)
        assert step.app == "app"

    def test_cheapest_app_first(self):
        state = SupportState("os")
        plan = generate_plan(
            state,
            [
                _record("expensive", _POOL[:20]),
                _record("cheap", ["read", "write"]),
            ],
        )
        assert plan.steps[0].app == "cheap"

    def test_shared_requirements_amortize(self):
        """After supporting app A, an app sharing A's syscalls is free."""
        state = SupportState("os")
        plan = generate_plan(
            state,
            [
                _record("a", ["read", "write", "socket"]),
                _record("b", ["read", "write", "socket", "bind"]),
                _record("c", ["read"]),
            ],
        )
        assert [s.app for s in plan.steps] == ["c", "a", "b"]
        assert plan.steps[2].implement == ("bind",)

    def test_stub_not_duplicated_across_steps(self):
        state = SupportState("os")
        plan = generate_plan(
            state,
            [
                _record("a", ["read"], stubbable=["uname"]),
                _record("b", ["write"], stubbable=["uname"]),
            ],
        )
        stubs = [s.stub for s in plan.steps]
        assert sum(len(x) for x in stubs) == 1

    def test_input_state_not_mutated(self):
        state = SupportState("os", implemented={"read"})
        generate_plan(state, [_record("a", ["read", "write"])])
        assert state.implemented == {"read"}

    def test_render_contains_steps(self):
        state = SupportState("os")
        plan = generate_plan(state, [_record("a", ["read"])])
        text = render_plan(plan)
        assert "step-by-step support plan" in text
        assert "+ a" in text
        text_names = render_plan(plan, syscall_numbers=False)
        assert "read" in text_names


app_names = st.sampled_from(["a", "b", "c", "d", "e", "f"])
syscall_sets = st.sets(st.sampled_from(_POOL), min_size=1, max_size=12)


@st.composite
def requirement_sets(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    names = [f"app{i}" for i in range(count)]
    return [
        _record(
            name,
            draw(syscall_sets),
            stubbable=draw(st.sets(st.sampled_from(_POOL), max_size=5)),
            fake_only=draw(st.sets(st.sampled_from(_POOL), max_size=3)),
        )
        for name in names
    ]


class TestPlanInvariants:
    @settings(max_examples=60, deadline=None)
    @given(requirement_sets())
    def test_plan_covers_all_apps_exactly_once(self, records):
        plan = generate_plan(SupportState("os"), records)
        planned = list(plan.initially_supported) + [s.app for s in plan.steps]
        assert sorted(planned) == sorted(r.app for r in records)

    @settings(max_examples=60, deadline=None)
    @given(requirement_sets())
    def test_each_step_unlocks_its_app(self, records):
        by_name = {r.app: r for r in records}
        plan = generate_plan(SupportState("os"), records)
        implemented = set()
        for step in plan.steps:
            implemented |= set(step.implement)
            assert by_name[step.app].required <= implemented

    @settings(max_examples=60, deadline=None)
    @given(requirement_sets())
    def test_no_syscall_implemented_twice(self, records):
        plan = generate_plan(SupportState("os"), records)
        seen = set()
        for step in plan.steps:
            for name in step.implement:
                assert name not in seen
                seen.add(name)

    @settings(max_examples=60, deadline=None)
    @given(requirement_sets())
    def test_total_equals_union_of_required(self, records):
        plan = generate_plan(SupportState("os"), records)
        union = set()
        for record in records:
            union |= record.required
        assert plan.total_implemented == len(union)

    @settings(max_examples=60, deadline=None)
    @given(requirement_sets())
    def test_greedy_marginal_costs_are_locally_minimal(self, records):
        """At each step, no remaining app would have been cheaper."""
        by_name = {r.app: r for r in records}
        plan = generate_plan(SupportState("os"), records)
        implemented = set()
        remaining = {r.app for r in records} - set(plan.initially_supported)
        for step in plan.steps:
            costs = {
                name: len(by_name[name].required - implemented)
                for name in remaining
            }
            assert len(step.implement) == min(costs.values())
            implemented |= set(step.implement)
            remaining.discard(step.app)

    @settings(max_examples=30, deadline=None)
    @given(requirement_sets())
    def test_cumulative_curve_monotone(self, records):
        plan = generate_plan(SupportState("os"), records)
        curve = plan.cumulative_curve()
        syscall_counts = [p[0] for p in curve]
        app_counts = [p[1] for p in curve]
        assert syscall_counts == sorted(syscall_counts)
        assert app_counts == sorted(app_counts)
