"""Tests for the seccomp-BPF filter builder (pure, no installation)."""

import struct

from hypothesis import given
from hypothesis import strategies as st

from repro.ptracer.seccomp_bpf import (
    AUDIT_ARCH_X86_64,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_KILL,
    SECCOMP_RET_TRACE,
    build_trace_filter,
    pack_program,
    simulate,
)
from repro.syscalls import number_of

syscall_numbers = st.sets(
    st.sampled_from([0, 1, 2, 9, 12, 59, 202, 257, 302]), min_size=0, max_size=6
)


class TestFilterSemantics:
    def test_traced_numbers_trace(self):
        program = build_trace_filter([number_of("futex"), number_of("brk")])
        assert simulate(program, nr=number_of("futex")) == SECCOMP_RET_TRACE
        assert simulate(program, nr=number_of("brk")) == SECCOMP_RET_TRACE

    def test_other_numbers_allow(self):
        program = build_trace_filter([number_of("futex")])
        assert simulate(program, nr=number_of("read")) == SECCOMP_RET_ALLOW

    def test_wrong_arch_kills(self):
        program = build_trace_filter([1, 2, 3])
        assert simulate(program, nr=1, arch=0xDEAD) == SECCOMP_RET_KILL

    def test_wrong_arch_allow_mode(self):
        program = build_trace_filter([1, 2, 3], kill_on_wrong_arch=False)
        assert simulate(program, nr=1, arch=0xDEAD) == SECCOMP_RET_ALLOW

    def test_empty_filter_allows_everything(self):
        program = build_trace_filter([])
        assert simulate(program, nr=0) == SECCOMP_RET_ALLOW
        assert simulate(program, nr=450) == SECCOMP_RET_ALLOW

    @given(syscall_numbers, st.integers(min_value=0, max_value=460))
    def test_filter_matches_specification(self, traced, probe):
        program = build_trace_filter(traced)
        expected = SECCOMP_RET_TRACE if probe in traced else SECCOMP_RET_ALLOW
        assert simulate(program, nr=probe) == expected

    @given(syscall_numbers)
    def test_arch_guard_always_first(self, traced):
        program = build_trace_filter(traced)
        assert simulate(program, nr=0, arch=0x1234) == SECCOMP_RET_KILL


class TestEncoding:
    def test_instruction_size(self):
        program = build_trace_filter([202])
        packed = pack_program(program)
        assert len(packed) == len(program) * 8

    def test_packed_layout_little_endian(self):
        program = build_trace_filter([])
        code, jt, jf, k = struct.unpack_from("<HBBI", pack_program(program), 0)
        assert code == 0x20          # BPF_LD | BPF_W | BPF_ABS
        assert k == 4                # offsetof(seccomp_data, arch)

    def test_program_length_scales(self):
        small = build_trace_filter([1])
        large = build_trace_filter(range(50))
        assert len(large) == len(small) + 49

    def test_duplicates_removed(self):
        assert len(build_trace_filter([5, 5, 5])) == len(build_trace_filter([5]))

    def test_arch_constant(self):
        assert AUDIT_ARCH_X86_64 == 0xC000003E
