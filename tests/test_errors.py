"""Tests for the exception hierarchy and edge-case failure paths."""

import pytest

from repro.errors import (
    AnalysisError,
    BackendError,
    DatabaseError,
    ElfFormatError,
    FinalRunMismatchError,
    LoupeError,
    PlanError,
    PolicyError,
    PtraceUnavailableError,
    StaticAnalysisError,
    TraceeError,
    UnknownSyscallError,
    WorkloadError,
)


class TestHierarchy:
    def test_everything_is_a_loupe_error(self):
        for exc_type in (
            UnknownSyscallError, PolicyError, WorkloadError, BackendError,
            PtraceUnavailableError, TraceeError, AnalysisError,
            FinalRunMismatchError, DatabaseError, PlanError,
            StaticAnalysisError, ElfFormatError,
        ):
            assert issubclass(exc_type, LoupeError)

    def test_dual_inheritance(self):
        """Library errors also behave like the stdlib types callers
        naturally catch."""
        assert issubclass(UnknownSyscallError, KeyError)
        assert issubclass(PolicyError, ValueError)

    def test_specializations(self):
        assert issubclass(PtraceUnavailableError, BackendError)
        assert issubclass(TraceeError, BackendError)
        assert issubclass(FinalRunMismatchError, AnalysisError)
        assert issubclass(ElfFormatError, StaticAnalysisError)


class TestMessages:
    def test_unknown_syscall_message(self):
        error = UnknownSyscallError("warp", arch="i386")
        assert "warp" in str(error)
        assert "i386" in str(error)
        assert error.key == "warp"

    def test_final_run_mismatch_carries_conflicts(self):
        error = FinalRunMismatchError((("futex", "close"), ("brk",)))
        assert error.conflicts == (("futex", "close"), ("brk",))
        assert "futex,close" in str(error)

    def test_final_run_mismatch_empty(self):
        assert "unknown" in str(FinalRunMismatchError(()))


class TestRuntimeGuards:
    def test_fallback_chain_depth_limit(self):
        """A pathological fallback cycle is cut off, not recursed into."""
        from repro.appsim.backend import SimBackend
        from repro.appsim.behavior import abort, fallback, harmless
        from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
        from repro.core.policy import combined
        from repro.core.workload import health_check

        # brk falls back to mmap falls back to brk... 10 levels deep.
        node = SyscallOp(syscall="brk", on_stub=abort(), on_fake=harmless())
        for index in range(10):
            syscall = "mmap" if index % 2 == 0 else "brk"
            node = SyscallOp(
                syscall=syscall, on_stub=fallback(node), on_fake=harmless()
            )
        program = SimProgram(
            name="chain", version="1", ops=(node,),
            profiles={"*": WorkloadProfile()},
        )
        run = SimBackend(program).run(
            health_check("health"), combined(stubs=["brk", "mmap"])
        )
        assert not run.success
        assert "fallback chain" in run.failure_reason
