"""Tests for historical build derivation (Figure 8 support)."""

from repro.appsim.apps.legacy import (
    BACKDATE_DROPS,
    BACKDATE_REWRITES,
    backdate,
    build_legacy_pairs,
)
from repro.appsim.corpus import build
from repro.core.policy import passthrough


class TestBackdating:
    def test_modern_variants_rewritten(self):
        app = build("memcached")
        old = backdate(app, version="1.2", year=2006)
        live = old.program.live_syscalls()
        assert "accept4" not in live
        assert "accept" in live
        assert "epoll_create1" not in live
        assert "epoll_create" in live

    def test_era_inappropriate_calls_dropped(self):
        app = build("memcached")
        old = backdate(app, version="1.2", year=2006)
        live = old.program.live_syscalls()
        for gone in ("getrandom", "eventfd2"):
            assert gone not in live

    def test_counts_roughly_stable(self):
        """The paper's point: old and new builds have similar footprints."""
        app = build("nginx")
        old = backdate(app, version="0.3.19", year=2006)
        new_count = len(app.program.live_syscalls())
        old_count = len(old.program.live_syscalls())
        assert abs(new_count - old_count) <= 6

    def test_backdated_app_still_runs(self):
        app = build("redis")
        old = backdate(app, version="2.0", year=2010)
        run = old.backend().run(old.workloads["health"], passthrough())
        assert run.success

    def test_fallbacks_backdated_too(self):
        app = build("redis")
        old = backdate(app, version="2.0", year=2010)
        for op in old.program.ops:
            if op.on_stub.fallback is not None:
                assert op.on_stub.fallback.syscall not in BACKDATE_REWRITES

    def test_metadata(self):
        app = build("redis")
        old = backdate(app, version="2.0", year=2010)
        assert old.version == "2.0"
        assert old.year == 2010
        assert old.name == "redis"


class TestLegacyPairs:
    def test_three_paper_subjects(self):
        pairs = build_legacy_pairs()
        assert set(pairs) == {"httpd", "nginx", "redis"}

    def test_pair_structure(self):
        for name, (old, recent) in build_legacy_pairs().items():
            assert old.year < 2012
            assert old.name == recent.name == name

    def test_rewrite_map_values_are_valid(self):
        from repro.syscalls import exists

        for old_name, new_name in BACKDATE_REWRITES.items():
            assert exists(old_name)
            assert exists(new_name)
        for name in BACKDATE_DROPS:
            assert exists(name)
