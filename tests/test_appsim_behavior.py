"""Tests for failure-policy and fake-reaction types."""

import pytest

from repro.appsim.behavior import (
    NEUTRAL,
    FakeKind,
    FakeReaction,
    MetricShift,
    StubKind,
    StubReaction,
    abort,
    as_failure,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.program import SyscallOp


class TestConstructors:
    def test_ignore(self):
        reaction = ignore()
        assert reaction.kind is StubKind.IGNORE
        assert reaction.shift.neutral

    def test_ignore_with_shift(self):
        reaction = ignore(perf_factor=1.15, mem_frac=0.17)
        assert reaction.shift.perf_factor == 1.15
        assert reaction.shift.mem_frac == 0.17
        assert not reaction.shift.neutral

    def test_abort(self):
        assert abort().kind is StubKind.ABORT

    def test_safe_default(self):
        assert safe_default().kind is StubKind.SAFE_DEFAULT

    def test_disable(self):
        reaction = disable("persistence", fd_frac=-0.25)
        assert reaction.kind is StubKind.DISABLE_FEATURE
        assert reaction.feature == "persistence"
        assert reaction.shift.fd_frac == -0.25

    def test_fallback(self):
        op = SyscallOp(syscall="mmap", on_stub=abort(), on_fake=breaks_core())
        reaction = fallback(op, mem_frac=0.17)
        assert reaction.kind is StubKind.FALLBACK
        assert reaction.fallback is op

    def test_harmless(self):
        assert harmless().kind is FakeKind.HARMLESS

    def test_breaks(self):
        reaction = breaks("concurrency", perf_factor=0.34, fd_frac=0.94)
        assert reaction.kind is FakeKind.BREAKS_FEATURE
        assert reaction.feature == "concurrency"
        assert reaction.shift.perf_factor == 0.34

    def test_breaks_core(self):
        assert breaks_core().kind is FakeKind.BREAKS_CORE

    def test_as_failure(self):
        assert as_failure().kind is FakeKind.AS_FAILURE


class TestValidation:
    def test_disable_needs_feature(self):
        with pytest.raises(ValueError):
            StubReaction(kind=StubKind.DISABLE_FEATURE)

    def test_fallback_needs_op(self):
        with pytest.raises(ValueError):
            StubReaction(kind=StubKind.FALLBACK)

    def test_breaks_needs_feature(self):
        with pytest.raises(ValueError):
            FakeReaction(kind=FakeKind.BREAKS_FEATURE)


class TestMetricShift:
    def test_neutral_constant(self):
        assert NEUTRAL.neutral
        assert NEUTRAL.perf_factor == 1.0

    def test_non_neutral(self):
        assert not MetricShift(perf_factor=0.9).neutral
        assert not MetricShift(fd_frac=0.1).neutral
        assert not MetricShift(mem_frac=-0.1).neutral
