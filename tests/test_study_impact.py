"""Tests for the Table 2 performance/resource impact study."""

import pytest

from repro.study.impact import analyze_impacts, render_table2


@pytest.fixture(scope="module")
def table():
    return analyze_impacts()


class TestSignatureRows:
    def test_nginx_write_faster(self, table):
        """Table 2: Nginx write stub -> +15% (access logs skipped)."""
        row = table.row("nginx", "write")
        assert row.perf_delta == pytest.approx(0.15, abs=0.03)

    def test_nginx_sigsuspend_slower(self, table):
        row = table.row("nginx", "rt_sigsuspend")
        assert row.perf_delta == pytest.approx(-0.38, abs=0.03)

    def test_nginx_brk_memory(self, table):
        row = table.row("nginx", "brk")
        assert row.mem_delta == pytest.approx(0.17, abs=0.03)

    def test_nginx_clone_memory(self, table):
        row = table.row("nginx", "clone")
        assert row.mem_delta == pytest.approx(0.10, abs=0.03)

    def test_redis_close_fd_explosion(self, table):
        """Table 2: Redis close stub -> x8 file descriptors."""
        row = table.row("redis", "close")
        assert row.fd_delta == pytest.approx(7.0, abs=0.5)

    def test_redis_futex_fake(self, table):
        """Table 2: Redis futex fake -> -66% perf, +94% descriptors."""
        row = table.row("redis", "futex")
        assert row.perf_delta == pytest.approx(-0.66, abs=0.05)
        assert row.fd_delta == pytest.approx(0.94, abs=0.08)

    def test_redis_munmap_memory(self, table):
        row = table.row("redis", "munmap")
        assert row.mem_delta == pytest.approx(0.19, abs=0.03)

    def test_redis_sigprocmask_memory_drop(self, table):
        row = table.row("redis", "rt_sigprocmask")
        assert row.mem_delta == pytest.approx(-0.15, abs=0.03)

    def test_redis_pipe2_fd_drop(self, table):
        row = table.row("redis", "pipe2")
        assert row.fd_delta == pytest.approx(-0.25, abs=0.05)

    def test_iperf3_brk_memory(self, table):
        """Table 2: iPerf3 brk -> +11% memory, its only impact."""
        row = table.row("iperf3", "brk")
        assert row.mem_delta == pytest.approx(0.11, abs=0.02)

    def test_redis_brk_shown_despite_margin(self, table):
        """Redis's +2% brk appears because the row set is the union."""
        row = table.row("redis", "brk")
        assert row.mem_delta is not None
        assert row.mem_delta == pytest.approx(0.02, abs=0.02)


class TestTableMechanics:
    def test_row_lookup_missing(self, table):
        with pytest.raises(KeyError):
            table.row("nginx", "futex")  # nginx has no futex at all

    def test_impacted_syscalls_per_app(self, table):
        assert "futex" in table.syscalls_for("redis")
        assert "write" in table.syscalls_for("nginx")

    def test_most_syscalls_unimpacted(self, table, seven_bench_results):
        """Section 5.3: for the majority of syscalls, stubbing/faking
        stays within the error margin — the table is short."""
        impacted = {row.syscall for row in table.rows}
        assert len(impacted) <= 12

    def test_render(self, table):
        text = render_table2(table)
        assert "redis" in text and "futex" in text
        assert "-66%" in text
