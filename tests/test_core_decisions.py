"""Tests for the stub/fake decision lattice, including merge laws."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.decisions import Decision, Verdict, merge_all

decisions = st.builds(Decision, can_stub=st.booleans(), can_fake=st.booleans())


class TestVerdicts:
    def test_four_buckets(self):
        assert Decision(True, True).verdict is Verdict.ANY
        assert Decision(True, False).verdict is Verdict.STUB_ONLY
        assert Decision(False, True).verdict is Verdict.FAKE_ONLY
        assert Decision(False, False).verdict is Verdict.REQUIRED

    def test_required_and_avoidable_are_complements(self):
        for stub in (True, False):
            for fake in (True, False):
                decision = Decision(stub, fake)
                assert decision.required != decision.avoidable

    def test_verdict_avoidable_flag(self):
        assert not Verdict.REQUIRED.avoidable
        assert Verdict.STUB_ONLY.avoidable
        assert Verdict.FAKE_ONLY.avoidable
        assert Verdict.ANY.avoidable


class TestMerge:
    def test_conservative(self):
        """One failing replica disqualifies the technique."""
        merged = Decision(True, True).merge(Decision(False, True))
        assert not merged.can_stub
        assert merged.can_fake

    def test_identity_element(self):
        optimistic = Decision.optimistic()
        for stub in (True, False):
            for fake in (True, False):
                decision = Decision(stub, fake)
                assert optimistic.merge(decision) == decision

    def test_absorbing_element(self):
        required = Decision.required_decision()
        for stub in (True, False):
            for fake in (True, False):
                assert required.merge(Decision(stub, fake)) == required

    def test_merge_all_empty_rejected(self):
        """An empty fold would silently claim full avoidability."""
        with pytest.raises(ValueError):
            merge_all([])

    def test_merge_all_single(self):
        decision = Decision(False, True)
        assert merge_all([decision]) == decision

    @given(decisions, decisions)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(decisions, decisions, decisions)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(decisions)
    def test_idempotent(self, a):
        assert a.merge(a) == a

    @given(st.lists(decisions, min_size=1, max_size=8))
    def test_merge_all_never_grants_capability(self, replica_decisions):
        merged = merge_all(replica_decisions)
        assert merged.can_stub == all(d.can_stub for d in replica_decisions)
        assert merged.can_fake == all(d.can_fake for d in replica_decisions)
