"""Tests for the SimProgram model and its validation."""

import pytest

from repro.appsim.behavior import abort, disable, fallback, harmless, ignore
from repro.appsim.program import (
    Origin,
    Phase,
    SimProgram,
    SyscallOp,
    WorkloadProfile,
)
from repro.errors import LoupeError


def _op(syscall="read", **kwargs):
    kwargs.setdefault("on_stub", ignore())
    kwargs.setdefault("on_fake", harmless())
    return SyscallOp(syscall=syscall, **kwargs)


class TestSyscallOp:
    def test_unknown_syscall_rejected(self):
        with pytest.raises(LoupeError):
            _op("made_up_syscall")

    def test_zero_count_rejected(self):
        with pytest.raises(LoupeError):
            _op(count=0)

    def test_relative_path_rejected(self):
        with pytest.raises(LoupeError):
            _op("openat", path="etc/passwd")

    def test_qualified_name(self):
        assert _op("fcntl", subfeature="F_SETFL").qualified == "fcntl:F_SETFL"
        assert _op("read").qualified == "read"

    def test_pseudo_file_detection(self):
        assert _op("openat", path="/dev/null").touches_pseudo_file
        assert not _op("openat", path="/etc/passwd").touches_pseudo_file

    def test_defaults(self):
        op = _op()
        assert op.phase is Phase.STARTUP
        assert op.origin is Origin.APP
        assert op.checks_return
        assert op.when is None


class TestProgramValidation:
    def test_undeclared_feature_rejected(self):
        with pytest.raises(LoupeError):
            SimProgram(
                name="p", version="1",
                ops=( _op(feature="ghost"),),
            )

    def test_undeclared_stub_feature_rejected(self):
        with pytest.raises(LoupeError):
            SimProgram(
                name="p", version="1",
                ops=(_op(on_stub=disable("ghost")),),
            )

    def test_undeclared_when_feature_rejected(self):
        with pytest.raises(LoupeError):
            SimProgram(
                name="p", version="1",
                ops=(_op(when=frozenset({"ghost"})),),
            )

    def test_core_feature_implicit(self):
        program = SimProgram(name="p", version="1", ops=(_op(),))
        assert program.features == frozenset({"core"})


class TestProgramViews:
    def test_live_syscalls_include_fallbacks(self):
        mmap_op = _op("mmap", on_stub=abort())
        program = SimProgram(
            name="p", version="1",
            ops=(_op("brk", on_stub=fallback(mmap_op)),),
        )
        assert program.live_syscalls() == {"brk", "mmap"}

    def test_static_views(self):
        program = SimProgram(
            name="p", version="1",
            ops=(_op("read"),),
            static_extra={
                "source": frozenset({"chown"}),
                "binary": frozenset({"chown", "mount"}),
            },
        )
        assert program.static_view("source") == {"read", "chown"}
        assert program.static_view("binary") == {"read", "chown", "mount"}
        assert program.static_view("unknown-level") == {"read"}

    def test_profiles_default_and_named(self):
        program = SimProgram(
            name="p", version="1", ops=(_op(),),
            profiles={
                "bench": WorkloadProfile(metric=5.0),
                "*": WorkloadProfile(metric=1.0),
            },
        )
        assert program.profile("bench").metric == 5.0
        assert program.profile("anything-else").metric == 1.0

    def test_checking_views(self):
        program = SimProgram(
            name="p", version="1",
            ops=(
                _op("read", checks_return=True),
                _op("write", checks_return=False),
                _op("close", origin=Origin.LIBC, checks_return=True),
            ),
        )
        assert program.ops_checking_returns() == {"read"}
        assert program.app_syscalls() == {"read", "write"}
