"""Tests for cross-application knowledge transfer (Section 6 extension)."""

import pytest

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, harmless, ignore
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.transfer import PriorKnowledge, TransferStats
from repro.core.workload import health_check


class _CountingBackend:
    """Wraps a SimBackend and counts runs."""

    def __init__(self, program):
        self._inner = SimBackend(program)
        self.name = self._inner.name
        self.runs = 0

    def run(self, workload, policy, *, replica=0):
        self.runs += 1
        return self._inner.run(workload, policy, replica=replica)


def _program(uname_stub=ignore(), name="transfer-demo"):
    return SimProgram(
        name=name,
        version="1",
        ops=(
            SyscallOp(syscall="read", on_stub=abort(), on_fake=breaks_core()),
            SyscallOp(syscall="uname", on_stub=uname_stub, on_fake=harmless()),
            SyscallOp(syscall="close", on_stub=ignore(), on_fake=harmless()),
        ),
        profiles={"*": WorkloadProfile()},
    )


def _experience(count=6, uname_stub=ignore()):
    """Analyses of `count` apps with identical decisions."""
    results = []
    for index in range(count):
        program = _program(uname_stub=uname_stub, name=f"seen-{index}")
        result = Analyzer(AnalyzerConfig(replicas=3)).analyze(
            SimBackend(program), health_check("health")
        )
        results.append(result)
    return results


class TestPriorKnowledge:
    def test_unanimous_priors_predict(self):
        priors = PriorKnowledge.from_results(_experience())
        prediction = priors.predict("uname")
        assert prediction is not None
        assert prediction.can_stub and prediction.can_fake
        required = priors.predict("read")
        assert required is not None
        assert not required.can_stub and not required.can_fake

    def test_thin_experience_predicts_nothing(self):
        priors = PriorKnowledge.from_results(_experience(count=2))
        assert priors.predict("uname") is None

    def test_mixed_history_predicts_nothing(self):
        mixed = _experience(count=3) + _experience(count=3, uname_stub=abort())
        priors = PriorKnowledge.from_results(mixed)
        assert priors.predict("uname") is None
        # read stayed unanimous: still predictable.
        assert priors.predict("read") is not None

    def test_prior_rates(self):
        priors = PriorKnowledge.from_results(_experience())
        prior = priors.prior("uname")
        assert prior.observations == 6
        assert prior.stub_rate == 1.0

    def test_confident_features(self):
        priors = PriorKnowledge.from_results(_experience())
        assert {"read", "uname", "close"} <= priors.confident_features()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PriorKnowledge({}, confidence=0.3)
        with pytest.raises(ValueError):
            PriorKnowledge({}, min_observations=0)


class TestFastPath:
    def test_priors_save_runs_without_changing_decisions(self):
        priors = PriorKnowledge.from_results(_experience())
        program = _program(name="fresh")

        plain_backend = _CountingBackend(program)
        plain = Analyzer(AnalyzerConfig(replicas=3)).analyze(
            plain_backend, health_check("health")
        )

        fast_backend = _CountingBackend(program)
        analyzer = Analyzer(AnalyzerConfig(replicas=3, priors=priors))
        fast = analyzer.analyze(fast_backend, health_check("health"))

        assert fast.required_syscalls() == plain.required_syscalls()
        assert fast.stubbable_syscalls() == plain.stubbable_syscalls()
        assert fast_backend.runs < plain_backend.runs
        stats = analyzer.last_transfer_stats
        assert isinstance(stats, TransferStats)
        assert stats.features_fast_pathed == 3
        assert stats.runs_saved > 0
        assert stats.fallbacks == 0

    def test_wrong_prior_triggers_fallback(self):
        """A fresh app that contradicts experience gets the full probe."""
        priors = PriorKnowledge.from_results(_experience())  # uname stubbable
        contrarian = _program(uname_stub=abort(), name="contrarian")
        analyzer = Analyzer(AnalyzerConfig(replicas=3, priors=priors))
        result = analyzer.analyze(
            SimBackend(contrarian), health_check("health")
        )
        # Correct decision despite the misleading prior: this app's
        # uname call site aborts on failure (fakeable, not stubbable).
        assert not result.features["uname"].decision.can_stub
        assert result.features["uname"].decision.can_fake
        assert analyzer.last_transfer_stats.fallbacks >= 1

    def test_no_priors_no_stats(self):
        analyzer = Analyzer(AnalyzerConfig(replicas=3))
        analyzer.analyze(SimBackend(_program()), health_check("health"))
        assert analyzer.last_transfer_stats is None

    def test_corpus_scale_transfer(self, full_corpus, bench_results):
        """Priors learned from the corpus fast-path most of a new app."""
        priors = PriorKnowledge.from_results(bench_results)
        app_backend = _CountingBackend(full_corpus[20].program)
        analyzer = Analyzer(AnalyzerConfig(replicas=3, priors=priors))
        analyzer.analyze(app_backend, full_corpus[20].bench)
        stats = analyzer.last_transfer_stats
        assert stats.fast_path_rate > 0.3
