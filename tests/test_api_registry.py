"""Tests for the pluggable execution-backend registry."""

import pytest

from repro.api.registry import (
    BackendRegistryError,
    BackendResolutionError,
    ResolvedTarget,
    UnknownBackendError,
    available_backends,
    create_target,
    create_targets,
    parse_backend_names,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.api.session import AnalysisRequest


class TestBuiltinRegistration:
    def test_builtins_self_register(self):
        names = available_backends()
        assert "appsim" in names
        assert "ptrace" in names

    def test_appsim_factory_resolves_corpus_app(self):
        target = create_target("appsim", AnalysisRequest(app="redis"))
        assert isinstance(target, ResolvedTarget)
        assert target.app == "redis"
        assert target.workload.name == "bench"
        assert target.backend.name.startswith("sim:redis")
        assert target.app_version

    def test_appsim_factory_rejects_unknown_app(self):
        with pytest.raises(BackendResolutionError, match="unknown app 'doom'"):
            create_target("appsim", AnalysisRequest(app="doom"))

    def test_appsim_factory_rejects_unknown_workload(self):
        with pytest.raises(BackendResolutionError, match="no workload"):
            create_target(
                "appsim", AnalysisRequest(app="redis", workload="chaos")
            )

    def test_ptrace_factory_keys_on_full_command(self, monkeypatch):
        # Two commands sharing argv[0] must not collide on one record
        # key; the full command line is the target's version identity.
        import repro.ptracer as ptracer

        monkeypatch.setattr(
            ptracer, "PtraceBackend", lambda: type(
                "FakeBackend", (), {"name": "ptrace"}
            )()
        )
        first = ptracer._ptrace_backend_factory(
            AnalysisRequest(backend="ptrace", argv=("python", "a.py"))
        )
        second = ptracer._ptrace_backend_factory(
            AnalysisRequest(backend="ptrace", argv=("python", "b.py"))
        )
        assert first.app == second.app == "python"
        assert first.app_version != second.app_version

    def test_ptrace_factory_requires_argv(self):
        # The argv check fires before the backend probes ptrace, so
        # this works even where ptrace itself is unavailable.
        with pytest.raises(BackendResolutionError, match="needs a command"):
            create_target("ptrace", AnalysisRequest(app="ignored"))


class TestRegistration:
    def test_register_resolve_unregister(self):
        sentinel = object()
        factory = lambda request: sentinel
        register_backend("test-backend", factory)
        try:
            assert resolve_backend("test-backend") is factory
            assert "test-backend" in available_backends()
        finally:
            unregister_backend("test-backend")
        assert "test-backend" not in available_backends()

    def test_duplicate_registration_rejected(self):
        register_backend("test-dup", lambda request: None)
        try:
            with pytest.raises(BackendRegistryError, match="already registered"):
                register_backend("test-dup", lambda request: None)
        finally:
            unregister_backend("test-dup")

    def test_same_factory_reregistration_is_idempotent(self):
        factory = lambda request: None
        register_backend("test-idem", factory)
        try:
            register_backend("test-idem", factory)  # no error
        finally:
            unregister_backend("test-idem")

    def test_replace_overrides(self):
        first = lambda request: "first"
        second = lambda request: "second"
        register_backend("test-replace", first)
        try:
            register_backend("test-replace", second, replace=True)
            assert resolve_backend("test-replace") is second
        finally:
            unregister_backend("test-replace")

    def test_empty_name_rejected(self):
        with pytest.raises(BackendRegistryError, match="non-empty"):
            register_backend("  ", lambda request: None)

    def test_unaddressable_names_rejected_at_registration(self):
        # The spec grammar splits on commas and strips whitespace; a
        # name no spec could resolve back to must not enter the
        # registry in the first place.
        for name in ("variant,v2", " appsim2", "appsim2 "):
            with pytest.raises(BackendRegistryError, match="addressable"):
                register_backend(name, lambda request: None)

    def test_unregister_absent_is_noop(self):
        unregister_backend("never-registered")


class TestResolutionErrors:
    def test_unknown_backend_lists_available(self):
        with pytest.raises(UnknownBackendError) as excinfo:
            resolve_backend("bogus")
        message = str(excinfo.value)
        assert "unknown backend 'bogus'" in message
        assert "appsim" in message
        assert "ptrace" in message
        assert excinfo.value.name == "bogus"
        assert "appsim" in excinfo.value.available


class TestBackendSpecs:
    def test_parse_comma_list(self):
        assert parse_backend_names("appsim,ptrace") == ("appsim", "ptrace")

    def test_parse_strips_whitespace(self):
        assert parse_backend_names(" appsim , ptrace ") == (
            "appsim", "ptrace"
        )

    def test_duplicates_deduplicate_deterministically(self):
        # First occurrence wins the position, on every call.
        for _ in range(3):
            assert parse_backend_names("appsim,ptrace,appsim") == (
                "appsim", "ptrace"
            )
        assert parse_backend_names("appsim,appsim") == ("appsim",)

    def test_parse_iterable_input_expands_embedded_commas(self):
        assert parse_backend_names(["appsim,ptrace", "other"]) == (
            "appsim", "ptrace", "other"
        )

    def test_empty_name_rejected(self):
        for spec in ("appsim,", ",appsim", "", "  ", ["appsim", ""]):
            with pytest.raises(BackendRegistryError, match="non-empty"):
                parse_backend_names(spec)

    def test_empty_iterable_rejected(self):
        with pytest.raises(BackendRegistryError, match="at least one"):
            parse_backend_names([])

    def test_create_targets_resolves_each_unique_name(self):
        register_backend("test-multi-b", lambda request: request)
        try:
            targets = create_targets(
                "appsim,test-multi-b,appsim",
                AnalysisRequest(app="redis"),
            )
            assert len(targets) == 2
            assert isinstance(targets[0], ResolvedTarget)
            assert targets[0].app == "redis"
            assert isinstance(targets[1], AnalysisRequest)
        finally:
            unregister_backend("test-multi-b")

    def test_create_targets_unknown_name_fails_before_any_factory(self):
        ran = []
        register_backend("test-multi-spy", lambda request: ran.append(1))
        try:
            with pytest.raises(UnknownBackendError) as excinfo:
                create_targets(
                    "test-multi-spy,bogus", AnalysisRequest(app="redis")
                )
            assert not ran  # resolution failed before any factory ran
            assert "available:" in str(excinfo.value)
        finally:
            unregister_backend("test-multi-spy")

    def test_create_target_accepts_self_deduplicating_spec(self):
        target = create_target(
            "appsim,appsim", AnalysisRequest(app="redis")
        )
        assert target.app == "redis"

    def test_create_target_refuses_multi_spec(self):
        with pytest.raises(BackendRegistryError, match="create_targets"):
            create_target("appsim,ptrace", AnalysisRequest(app="redis"))


class TestBootstrapConcurrency:
    def test_first_resolution_race_waits_for_bootstrap(
        self, tmp_path, monkeypatch
    ):
        """Regression: the bootstrap completion flag used to be set
        *before* the built-in imports ran, so a concurrent first
        resolution (analyze_many(jobs=N) on a fresh process) could
        see an empty registry and raise UnknownBackendError."""
        import sys
        import threading

        from repro.api import registry

        module = tmp_path / "slow_backend_module.py"
        module.write_text(
            "import time\n"
            "from repro.api.registry import register_backend\n"
            "time.sleep(0.05)\n"  # widen the bootstrap window
            "register_backend('slow-backend', lambda request: None)\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setattr(
            registry, "_BUILTIN_BACKEND_MODULES", ("slow_backend_module",)
        )
        monkeypatch.setattr(registry, "_bootstrapped", False)
        errors = []
        ready = threading.Barrier(6)

        def worker():
            try:
                ready.wait()
                registry.resolve_backend("slow-backend")
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        unregister_backend("slow-backend")
        sys.modules.pop("slow_backend_module", None)
        assert not errors

    def test_available_backends_ordering_stable_under_concurrent_bootstrap(
        self, monkeypatch
    ):
        """Every concurrent first listing must see the same, sorted,
        fully-bootstrapped tuple — never a partial registry."""
        import threading

        from repro.api import registry

        monkeypatch.setattr(registry, "_bootstrapped", False)
        listings = []
        lock = threading.Lock()
        ready = threading.Barrier(8)

        def worker():
            ready.wait()
            names = registry.available_backends()
            with lock:
                listings.append(names)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(listings) == 8
        first = listings[0]
        assert all(names == first for names in listings)
        assert list(first) == sorted(first)
        assert "appsim" in first and "ptrace" in first
