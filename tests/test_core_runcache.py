"""Tests for the persistent cross-campaign run cache.

Covers the store itself (round-trip, torn-line tolerance, last-writer
wins), its wiring into the probe engine (persistent hits counted
separately, LRU promotion, determinism gating, reset survival), and
the campaign-level behavior through ``LoupeSession(cache_path=...)``.
"""

import json
from collections import Counter

import pytest

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import build
from repro.core.engine import EngineStats, ProbeEngine
from repro.core.policy import stubbing
from repro.core.runcache import RunCacheStore
from repro.core.runner import ResourceUsage, RunResult
from repro.core.workload import benchmark


def test_runcache_shim_import_warns_deprecation():
    """The compatibility shim points callers at repro.core.cachestore."""
    import importlib
    import sys

    sys.modules.pop("repro.core.runcache", None)
    try:
        with pytest.warns(DeprecationWarning, match="cachestore"):
            importlib.import_module("repro.core.runcache")
    finally:
        # Leave the module importable for everyone else.
        importlib.import_module("repro.core.runcache")


def _result(metric=100.0, success=True):
    return RunResult(
        success=success,
        traced=Counter({"read": 3, "close": 1}),
        pseudo_files=Counter({"/proc/self/maps": 1}),
        metric=metric,
        resources=ResourceUsage(fd_peak=12, mem_peak_kb=2048),
        exit_code=0 if success else 1,
        failure_reason=None if success else "boom",
    )


KEY = ("sim:app-1.0", "bench", "stub:close", 0)


class TestRunResultSerialization:
    def test_round_trip_exact(self):
        for result in (_result(), _result(success=False), _result(metric=None)):
            assert RunResult.from_dict(result.to_dict()) == result

    def test_json_safe(self):
        document = json.loads(json.dumps(_result().to_dict()))
        assert RunResult.from_dict(document) == _result()


class TestRunCacheStore:
    def test_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunCacheStore(path)
        assert store.get(KEY) is None
        store.put(KEY, _result())
        assert store.get(KEY) == _result()
        reopened = RunCacheStore(path)
        assert reopened.get(KEY) == _result()
        assert len(reopened) == 1
        assert reopened.loaded_records == 1

    def test_missing_file_is_empty(self, tmp_path):
        store = RunCacheStore(tmp_path / "nowhere" / "runs.jsonl")
        assert len(store) == 0
        store.put(KEY, _result())  # creates parent directories
        assert RunCacheStore(store.path).get(KEY) is not None

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        with RunCacheStore(path) as store:
            store.put(KEY, _result())
            store.put(KEY[:3] + (1,), _result(metric=200.0))
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"backend": "sim:app-1.0", "work')  # killed mid-append
        survivor = RunCacheStore(path)
        assert len(survivor) == 2
        assert survivor.get(KEY) == _result()

    def test_duplicate_key_last_writer_wins(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunCacheStore(path)
        store.put(KEY, _result(metric=1.0))
        store.put(KEY, _result(metric=2.0))
        assert RunCacheStore(path).get(KEY).metric == 2.0

    def test_identical_put_does_not_grow_file(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        store = RunCacheStore(path)
        store.put(KEY, _result())
        size = path.stat().st_size
        store.put(KEY, _result())
        assert path.stat().st_size == size

    def test_close_idempotent_and_reopens(self, tmp_path):
        store = RunCacheStore(tmp_path / "runs.jsonl")
        store.put(KEY, _result())
        store.close()
        store.close()
        store.put(KEY[:3] + (1,), _result())  # reopens transparently
        assert len(RunCacheStore(store.path)) == 2


class _CountingBackend:
    name = "sim:counting"
    deterministic = True
    parallel_safe = True

    def __init__(self):
        self.calls = 0

    def run(self, workload, policy, *, replica=0):
        self.calls += 1
        return RunResult(success=True, traced=Counter({"read": 1}),
                         metric=100.0 + replica)


class TestEnginePersistence:
    def test_cold_engine_answers_from_store(self, tmp_path):
        store = RunCacheStore(tmp_path / "runs.jsonl")
        workload = benchmark("b", "m")
        writer_backend = _CountingBackend()
        with ProbeEngine(store=store) as writer:
            writer.run_replicas(writer_backend, workload, stubbing("close"), 3)
        assert writer_backend.calls == 3
        assert writer.stats.persistent_hits == 0

        reader_backend = _CountingBackend()
        with ProbeEngine(store=RunCacheStore(store.path)) as reader:
            reader.run_replicas(reader_backend, workload, stubbing("close"), 3)
        assert reader_backend.calls == 0
        stats = reader.stats
        assert stats == EngineStats(
            runs_requested=3, runs_executed=0, cache_hits=3,
            replicas_skipped=0, persistent_hits=3,
        )
        assert stats.persistent_hit_rate == pytest.approx(1.0)

    def test_lru_promotion_counts_disk_hit_once(self, tmp_path):
        store = RunCacheStore(tmp_path / "runs.jsonl")
        workload = benchmark("b", "m")
        with ProbeEngine(store=store) as writer:
            writer.run(writer_backend := _CountingBackend(), workload,
                       stubbing("close"))
        assert writer_backend.calls == 1
        with ProbeEngine(store=RunCacheStore(store.path)) as reader:
            for _ in range(3):
                reader.run(_CountingBackend(), workload, stubbing("close"))
        stats = reader.stats
        # First hit came from disk and was promoted; repeats hit the LRU.
        assert stats.cache_hits == 3
        assert stats.persistent_hits == 1

    def test_nondeterministic_backend_never_persisted(self, tmp_path):
        class _Undeclared(_CountingBackend):
            deterministic = False

        store = RunCacheStore(tmp_path / "runs.jsonl")
        with ProbeEngine(store=store) as engine:
            engine.run_replicas(_Undeclared(), benchmark("b", "m"),
                                stubbing("close"), 2)
        assert len(store) == 0
        assert not store.path.exists()

    def test_reset_keeps_store(self, tmp_path):
        store = RunCacheStore(tmp_path / "runs.jsonl")
        workload = benchmark("b", "m")
        with ProbeEngine(store=store) as engine:
            engine.run(_CountingBackend(), workload, stubbing("close"))
            engine.reset()
            assert engine.cached_runs() == 0
            backend = _CountingBackend()
            engine.run(backend, workload, stubbing("close"))
            assert backend.calls == 0  # answered from the store post-reset
            assert engine.stats.persistent_hits == 1

    def test_describe_mentions_persistent_hits_only_when_present(self):
        silent = EngineStats(runs_requested=2, runs_executed=2)
        assert "persistent" not in silent.describe()
        loud = EngineStats(runs_requested=2, cache_hits=2, persistent_hits=2)
        assert "2 from the persistent cache" in loud.describe()


class TestSessionCampaigns:
    def test_second_campaign_starts_warm(self, tmp_path):
        path = str(tmp_path / "campaign.jsonl")
        app = build("weborf")

        with LoupeSession(cache_path=path) as cold:
            cold.analyze(AnalysisRequest.for_app(app, "health"))
            cold_stats = cold.last_engine_stats
        assert cold_stats.persistent_hits == 0
        assert cold_stats.runs_executed > 0

        with LoupeSession(cache_path=path) as warm:
            result = warm.analyze(AnalysisRequest.for_app(app, "health"))
            warm_stats = warm.last_engine_stats
        assert warm_stats.runs_executed == 0
        assert warm_stats.persistent_hits == warm_stats.cache_hits > 0
        assert warm_stats.persistent_hit_rate > 0.5

        with LoupeSession() as fresh:
            reference = fresh.analyze(AnalysisRequest.for_app(app, "health"))
        assert json.dumps(result.to_dict(), sort_keys=True) == \
            json.dumps(reference.to_dict(), sort_keys=True)

    def test_analyzer_owns_store_built_from_config(self, tmp_path):
        from repro.core.analyzer import Analyzer, AnalyzerConfig
        from repro.core.workload import health_check

        path = str(tmp_path / "owned.jsonl")
        app = build("weborf")
        with Analyzer(AnalyzerConfig(run_cache=path)) as analyzer:
            analyzer.analyze(app.backend(), app.workload("health"))
            owned = analyzer._owned_store
            assert owned is not None
        assert owned._handle is None  # closed with the analyzer

    def test_session_shares_store_for_config_override(self, tmp_path):
        from repro.core.analyzer import AnalyzerConfig

        path = str(tmp_path / "override.jsonl")
        override = AnalyzerConfig(run_cache=path)
        with LoupeSession() as session:
            for workload in ("health", "bench"):
                session.analyze(
                    AnalysisRequest.for_app(build("weborf"), workload),
                    config=override,
                )
            # One store per identity, shared by both analyses — not
            # one full JSONL reload per analyzer.
            from repro.core.cachestore import store_identity

            assert list(session._stores) == [store_identity(path)]

    def test_per_call_run_cache_overrides_session_default(self, tmp_path):
        from repro.core.analyzer import AnalyzerConfig

        default_path = str(tmp_path / "default.jsonl")
        special_path = str(tmp_path / "special.jsonl")
        with LoupeSession(cache_path=default_path) as session:
            session.analyze(AnalysisRequest.for_app(build("weborf"), "health"))
            session.analyze(
                AnalysisRequest.for_app(build("weborf"), "bench"),
                config=AnalyzerConfig(run_cache=special_path),
            )
        # The override went to its own file, the default to the other.
        assert RunCacheStore(default_path).loaded_records > 0
        assert RunCacheStore(special_path).loaded_records > 0

    def test_cache_off_rejects_persistent_store(self, tmp_path):
        from repro.core.analyzer import AnalyzerConfig
        from repro.core.engine import ProbeEngine

        path = str(tmp_path / "contradiction.jsonl")
        with pytest.raises(ValueError, match="cache=True"):
            AnalyzerConfig(cache=False, run_cache=path)
        with pytest.raises(ValueError, match="cache=True"):
            ProbeEngine(cache=False, store=RunCacheStore(path))
        from repro.cli import main
        assert main(["analyze", "--app", "weborf", "--workload", "health",
                     "--no-cache", "--run-cache", path]) == 2

    def test_session_store_benched_by_cache_off_override(self, tmp_path):
        from repro.core.analyzer import AnalyzerConfig

        path = str(tmp_path / "bench.jsonl")
        with LoupeSession(cache_path=path) as session:
            session.analyze(
                AnalysisRequest.for_app(build("weborf"), "health"),
                config=AnalyzerConfig(cache=False),
            )
            stats = session.last_engine_stats
        assert stats.cache_hits == 0
        assert not RunCacheStore(path).loaded_records  # store not fed

    def test_cli_run_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.jsonl")
        argv = ["analyze", "--app", "weborf", "--workload", "health",
                "--run-cache", path]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "persistent cache" not in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "from the persistent cache" in warm
        assert "0 executed" in warm
