"""Tests for the LoupeSession campaign API (and the study wrappers on it)."""

import threading

import pytest

from repro.api.events import AnalysisEvent, FeatureProbed, render_legacy
from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.backend import SimBackend
from repro.appsim.corpus import build
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.db import Database, RecordKey
from repro.errors import PlanError


class _CountingBackend:
    """Counts runs; declares the sim contract so caching works."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.runs = 0
        self._lock = threading.Lock()

    def capabilities(self):
        from repro.core.runner import BackendCapabilities

        return BackendCapabilities(deterministic=True, parallel_safe=True)

    def run(self, workload, policy, *, replica=0):
        with self._lock:
            self.runs += 1
        return self._inner.run(workload, policy, replica=replica)


def _counting_request(app_name="weborf", workload="health"):
    app = build(app_name)
    backend = _CountingBackend(SimBackend(app.program))
    request = AnalysisRequest.for_target(
        backend, app.workload(workload),
        app=app.name, app_version=app.version,
    )
    return request, backend


class TestAnalyze:
    def test_analyze_by_app_name(self):
        session = LoupeSession()
        result = session.analyze("redis")
        assert result.app == "redis"
        assert result.workload == "bench"
        assert len(session.database) == 1
        assert session.last_engine_stats is not None
        assert session.last_engine_stats.runs_executed > 0

    def test_analyze_by_request_and_workload_override(self):
        session = LoupeSession()
        result = session.analyze(
            AnalysisRequest(app="weborf"), workload="health"
        )
        assert result.workload == "health"

    def test_workload_override_on_resolved_request_rejected(self):
        request = AnalysisRequest.for_app(build("weborf"), "bench")
        with pytest.raises(ValueError, match="already resolved"):
            LoupeSession().analyze(request, workload="health")
        # a matching override is harmless
        result = LoupeSession().analyze(request, workload="bench")
        assert result.workload == "bench"

    def test_analyze_app_model(self):
        session = LoupeSession()
        result = session.analyze(build("weborf"), workload="health")
        assert result.app == "weborf"
        assert result.app_version

    def test_unintelligible_request_rejected(self):
        with pytest.raises(TypeError, match="analysis request"):
            LoupeSession().analyze(42)

    def test_memoization_returns_canonical_record(self):
        session = LoupeSession()
        request, backend = _counting_request()
        first = session.analyze(request)
        runs_after_first = backend.runs
        second = session.analyze(request)
        assert second is first
        assert backend.runs == runs_after_first  # cache hit: no new runs

    def test_use_cache_false_reruns_and_replaces(self):
        session = LoupeSession()
        request, backend = _counting_request()
        session.analyze(request)
        runs_after_first = backend.runs
        session.analyze(request, use_cache=False)
        assert backend.runs == 2 * runs_after_first
        assert len(session.database) == 1

    def test_config_override_per_call(self):
        session = LoupeSession()
        result = session.analyze(
            "weborf", workload="health",
            config=AnalyzerConfig(replicas=1), use_cache=False,
        )
        assert result.replicas == 1

    def test_semantic_config_change_bypasses_cache(self):
        # replicas changes what an analysis records; a cached 3-replica
        # record must not answer a 5-replica request.
        session = LoupeSession()
        request, backend = _counting_request()
        session.analyze(request)
        runs_after_first = backend.runs
        result = session.analyze(request, config=AnalyzerConfig(replicas=5))
        assert result.replicas == 5
        assert backend.runs > runs_after_first
        assert len(session.database) == 1  # newest record replaced the old

    def test_engine_knob_change_still_hits_cache(self):
        session = LoupeSession()
        request, backend = _counting_request()
        first = session.analyze(request)
        runs_after_first = backend.runs
        second = session.analyze(
            request, config=AnalyzerConfig(parallel=4, cache=False)
        )
        assert second is first
        assert backend.runs == runs_after_first

    def test_cache_hit_leaves_last_stats_untouched(self):
        session = LoupeSession()
        request, _ = _counting_request()
        session.analyze(request)
        stats = session.last_engine_stats
        session.analyze(request)
        assert session.last_engine_stats is stats

    def test_matches_direct_analyzer(self):
        """The session adds memoization, never different conclusions."""
        app = build("weborf")
        direct = Analyzer().analyze(
            app.backend(), app.workload("health"),
            app=app.name, app_version=app.version,
        )
        via_session = LoupeSession().analyze(app, workload="health")
        assert via_session == direct


class TestAnalyzeMany:
    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            LoupeSession().analyze_many([], jobs=0)

    def test_parallel_matches_serial_in_request_order(self):
        names = ["weborf", "iperf3", "memcached"]
        serial = LoupeSession().analyze_many(
            [AnalysisRequest(app=name, workload="health") for name in names]
        )
        parallel = LoupeSession().analyze_many(
            [AnalysisRequest(app=name, workload="health") for name in names],
            jobs=4,
        )
        assert [r.app for r in serial] == names
        assert parallel == serial

    def test_concurrent_duplicates_keep_one_canonical_record(self):
        session = LoupeSession()
        requests = [
            AnalysisRequest(app="weborf", workload="health")
            for _ in range(6)
        ]
        results = session.analyze_many(requests, jobs=4)
        assert len(session.database) == 1
        canonical = session.query("weborf")[0]
        assert all(result == canonical for result in results)


class TestMultiTargetFanOut:
    """One campaign addressed at several execution targets."""

    def test_multi_backend_request_returns_report(self):
        from repro.report import CrossValidationReport

        session = LoupeSession()
        report = session.analyze(AnalysisRequest(
            app="weborf", workload="health", backend="appsim,appsim"
        ))
        assert isinstance(report, CrossValidationReport)
        assert report.app == "weborf"
        assert report.workload == "health"
        assert report.divergences == ()
        # Duplicates deduplicate: one target, one loupedb record.
        assert report.targets == ("appsim",)
        assert len(session.database) == 1

    def test_single_backend_request_still_returns_result(self):
        from repro.core.result import AnalysisResult

        result = LoupeSession().analyze(AnalysisRequest(
            app="weborf", workload="health", backend="appsim"
        ))
        assert isinstance(result, AnalysisResult)

    def test_backends_tuple_with_one_entry_is_single_target(self):
        from repro.core.result import AnalysisResult

        result = LoupeSession().analyze(AnalysisRequest(
            app="weborf", workload="health", backends=("appsim",)
        ))
        assert isinstance(result, AnalysisResult)

    def test_backends_as_plain_string_not_iterated_charwise(self):
        """Regression: backends='appsim' (a natural misuse) must mean
        one backend named appsim, not six one-character backends."""
        from repro.core.result import AnalysisResult

        request = AnalysisRequest(
            app="weborf", workload="health", backends="appsim"
        )
        assert request.backend_names() == ("appsim",)
        assert not request.is_multi_target()
        result = LoupeSession().analyze(request)
        assert isinstance(result, AnalysisResult)
        multi = AnalysisRequest(
            app="weborf", workload="health", backends="appsim,appsim"
        )
        assert multi.is_multi_target()

    def test_fan_out_matches_single_backend_results(self):
        """Fanning out never changes what each target concludes."""
        import repro.appsim as appsim
        from repro.api.registry import register_backend, unregister_backend

        register_backend(
            "appsim-twin", appsim._appsim_backend_factory, replace=True
        )
        try:
            single = LoupeSession().analyze(AnalysisRequest(
                app="weborf", workload="health"
            ))
            session = LoupeSession()
            report = session.analyze(AnalysisRequest(
                app="weborf", workload="health",
                backends=("appsim", "appsim-twin"),
            ))
            assert report.targets == ("appsim", "appsim-twin")
            assert report.agrees
            [record] = session.query("weborf")
            assert record == single
        finally:
            unregister_backend("appsim-twin")

    def test_colliding_identity_legs_run_independently(self):
        """Regression: a comparison must compare runs, not memoized
        copies. A variant backend sharing another target's loupedb
        identity (same backend.name) used to be memo-served from the
        first leg's record and trivially 'agree'; now every colliding
        leg executes fresh, so a behaviorally-divergent variant is
        exposed."""
        import dataclasses as dc

        import repro.appsim as appsim
        from repro.api.registry import (
            ResolvedTarget,
            register_backend,
            unregister_backend,
        )
        from repro.report import MISSING_IN_SIM

        runs = {"variant": 0}

        def variant_factory(request):
            target = appsim._appsim_backend_factory(request)
            inner = target.backend

            class Hiding:
                name = inner.name  # deliberately colliding identity

                def capabilities(self):
                    return inner.capabilities()

                def run(self, workload, policy, *, replica=0):
                    runs["variant"] += 1
                    result = inner.run(workload, policy, replica=replica)
                    traced = result.traced.copy()
                    traced.pop("close", None)
                    return dc.replace(result, traced=traced)

            return ResolvedTarget(
                backend=Hiding(), workload=target.workload,
                app=target.app, app_version=target.app_version,
            )

        register_backend("appsim-hiding", variant_factory, replace=True)
        try:
            session = LoupeSession()
            report = session.analyze(AnalysisRequest(
                app="weborf", workload="health",
                backends=("appsim", "appsim-hiding"),
            ))
        finally:
            unregister_backend("appsim-hiding")
        assert runs["variant"] > 0  # the variant leg actually executed
        assert not report.agrees
        assert any(
            d.kind == MISSING_IN_SIM and d.feature == "close"
            and d.target == "appsim-hiding"
            for d in report.divergences
        )

    def test_colliding_legs_ignore_persistent_run_cache(self, tmp_path):
        """Regression: the persistent run cache is keyed by backend
        *name*, so a store warmed by the honest backend could answer a
        colliding divergent variant's runs and mask every divergence.
        Independent legs must run without any persistent store."""
        import dataclasses as dc

        import repro.appsim as appsim
        from repro.api.registry import (
            ResolvedTarget,
            register_backend,
            unregister_backend,
        )

        def variant_factory(request):
            target = appsim._appsim_backend_factory(request)
            inner = target.backend

            class Hiding:
                name = inner.name  # colliding identity

                def capabilities(self):
                    return inner.capabilities()

                def run(self, workload, policy, *, replica=0):
                    result = inner.run(workload, policy, replica=replica)
                    traced = result.traced.copy()
                    traced.pop("close", None)
                    return dc.replace(result, traced=traced)

            return ResolvedTarget(
                backend=Hiding(), workload=target.workload,
                app=target.app, app_version=target.app_version,
            )

        cache = str(tmp_path / "runs.sqlite")
        register_backend("appsim-hiding", variant_factory, replace=True)
        try:
            with LoupeSession(cache_path=cache) as session:
                # Warm the store with the honest backend's runs.
                session.analyze(AnalysisRequest(
                    app="weborf", workload="health"
                ))
                report = session.analyze(AnalysisRequest(
                    app="weborf", workload="health",
                    backends=("appsim", "appsim-hiding"),
                ))
        finally:
            unregister_backend("appsim-hiding")
        assert not report.agrees
        assert any(
            d.feature == "close" and d.target == "appsim-hiding"
            for d in report.divergences
        )

    def test_fan_out_emits_target_events_and_report_event(self):
        import json as json_module

        from repro.api.events import (
            CrossValidationReady,
            TargetFinished,
            TargetStarted,
        )
        from repro.report import CrossValidationReport

        events = []
        session = LoupeSession(on_event=events.append)
        report = session.analyze(AnalysisRequest(
            app="weborf", workload="health", backend="appsim,appsim"
        ))
        started = [e for e in events if isinstance(e, TargetStarted)]
        finished = [e for e in events if isinstance(e, TargetFinished)]
        assert [(e.backend, e.index, e.total) for e in started] == [
            ("appsim", 0, 1)
        ]
        assert [(e.backend, e.ok) for e in finished] == [("appsim", True)]
        [ready] = [e for e in events if isinstance(e, CrossValidationReady)]
        # The report round-trips through its JSON event form — this is
        # the contract the CI compare-smoke job leans on.
        payload = json_module.loads(json_module.dumps(ready.to_dict()))
        assert payload["event"] == "cross_validation_report"
        rebuilt = CrossValidationReport.from_dict(payload["report"])
        assert rebuilt == report

    def test_fan_out_tags_analysis_events_with_registry_name(self):
        from repro.api.events import FeatureProbed

        events = []
        session = LoupeSession(on_event=events.append)
        session.analyze(AnalysisRequest(
            app="weborf", workload="health", backend="appsim,appsim"
        ))
        probed = [e for e in events if isinstance(e, FeatureProbed)]
        assert probed
        assert all(e.backend == "appsim" for e in probed)

    def test_unknown_name_in_comma_list_fails_before_any_run(self):
        from repro.api.registry import UnknownBackendError

        session = LoupeSession()
        with pytest.raises(UnknownBackendError, match="available"):
            session.analyze(AnalysisRequest(
                app="weborf", workload="health", backend="appsim,bogus"
            ))
        assert len(session.database) == 0

    def test_compare_always_returns_report(self):
        from repro.report import CrossValidationReport

        report = LoupeSession().compare(
            "weborf", workload="health", backends="appsim"
        )
        assert isinstance(report, CrossValidationReport)
        assert report.targets == ("appsim",)
        assert report.agrees

    def test_compare_backends_override_drops_preresolved_target(self):
        """compare(app_model, backends=...) must honor the override
        (the docstring promises it), re-resolving the request's app
        through the named factories."""
        from repro.report import CrossValidationReport

        request = AnalysisRequest.for_app(build("weborf"), "health")
        report = LoupeSession().compare(request, backends="appsim,appsim")
        assert isinstance(report, CrossValidationReport)
        assert report.app == "weborf"
        assert report.targets == ("appsim",)
        # App models coerce the same way.
        report = LoupeSession().compare(
            build("weborf"), workload="health", backends="appsim"
        )
        assert report.agrees

    def test_compare_rejects_preresolved_target_without_override(self):
        request = AnalysisRequest.for_app(build("weborf"), "health")
        with pytest.raises(ValueError, match="pre-resolved"):
            LoupeSession().compare(request)

    def test_analyze_many_mixes_single_and_multi(self):
        from repro.core.result import AnalysisResult
        from repro.report import CrossValidationReport

        session = LoupeSession()
        outcomes = session.analyze_many([
            AnalysisRequest(app="weborf", workload="health"),
            AnalysisRequest(
                app="iperf3", workload="health", backend="appsim,appsim"
            ),
        ], jobs=2)
        assert isinstance(outcomes[0], AnalysisResult)
        assert isinstance(outcomes[1], CrossValidationReport)
        assert len(session.database) == 2


class TestSharedProbePool:
    """Satellite: app-level jobs and probe-level parallelism compose
    over one process-wide probe pool instead of multiplying."""

    def test_analyze_many_shares_one_probe_pool(self, monkeypatch):
        from repro.core import engine as engine_module

        engine_module.shutdown_worker_pools()
        created = []
        real = engine_module._new_thread_pool

        def counting(width):
            pool = real(width)
            created.append(pool)
            return pool

        monkeypatch.setattr(engine_module, "_new_thread_pool", counting)
        try:
            session = LoupeSession()
            session.analyze_many(
                [
                    AnalysisRequest(app=name, workload="health")
                    for name in ("weborf", "iperf3", "memcached")
                ],
                jobs=3,
                config=AnalyzerConfig(parallel=2, executor="thread"),
            )
            # Three concurrent analyzers, one pool identity: every
            # engine fetched the same shared pool instead of sizing
            # its own (jobs x parallel threads).
            assert len(created) == 1
            assert created[0] is engine_module._THREAD_POOL
            assert created[0]._max_workers == 2
        finally:
            engine_module.shutdown_worker_pools()


class TestEventsAndProgress:
    def test_session_progress_renders_legacy_strings(self):
        lines, events = [], []
        session = LoupeSession(progress=lines.append, on_event=events.append)
        session.analyze("weborf", workload="health")
        assert lines == render_legacy(events)
        assert lines[0] == "baseline: 3 passthrough replica(s)"
        assert any(isinstance(e, FeatureProbed) for e in events)

    def test_per_call_on_event_composes_with_session_callback(self):
        session_events, call_events = [], []
        session = LoupeSession(on_event=session_events.append)
        session.analyze(
            "weborf", workload="health", on_event=call_events.append
        )
        assert call_events == session_events
        assert all(isinstance(e, AnalysisEvent) for e in call_events)

    def test_cache_hit_emits_no_events(self):
        events = []
        session = LoupeSession(on_event=events.append)
        session.analyze("weborf", workload="health")
        events.clear()
        session.analyze("weborf", workload="health")
        assert events == []


class TestDatabaseOwnership:
    def test_external_database_is_used(self):
        database = Database(metadata={"submitter": "test"})
        session = LoupeSession(database=database)
        session.analyze("weborf", workload="health")
        assert session.database is database
        assert len(database) == 1

    def test_clear_swaps_in_fresh_database(self):
        session = LoupeSession()
        session.analyze("weborf", workload="health")
        session.clear()
        assert len(session.database) == 0

    def test_query_filters(self):
        session = LoupeSession()
        session.analyze("weborf", workload="health")
        session.analyze("iperf3", workload="health")
        assert len(session.query()) == 2
        assert [r.app for r in session.query("weborf")] == ["weborf"]
        assert session.query("weborf", "health")
        assert session.query("weborf", "bench") == []
        assert session.query(backend="nope") == []

    def test_record_key_matches_stored_result(self):
        session = LoupeSession()
        result = session.analyze("weborf", workload="health")
        assert RecordKey.of(result) in session.database


class TestPlan:
    def test_plan_named_os(self):
        plan = LoupeSession().plan(os_name="unikraft")
        assert plan.steps
        assert {step.app for step in plan.steps}

    def test_plan_unknown_os(self):
        with pytest.raises(PlanError, match="unknown OS 'templeos'"):
            LoupeSession().plan(os_name="templeos")

    def test_plan_explicit_app_models(self):
        apps = [build("redis"), build("nginx")]
        plan = LoupeSession().plan(os_name="unikraft", apps=apps)
        assert {step.app for step in plan.steps} <= {"redis", "nginx"}


class TestStudyWrappers:
    """study.base delegates to a module-default session."""

    def test_analyze_app_populates_shared_database(self):
        from repro.study.base import (
            analyze_app,
            clear_cache,
            default_session,
            shared_database,
        )

        clear_cache()
        result = analyze_app(build("weborf"), "health")
        assert len(shared_database()) == 1
        assert shared_database() is default_session().database
        # memoized: same object back
        assert analyze_app(build("weborf"), "health") is result
        clear_cache()
        assert len(shared_database()) == 0

    def test_analyze_app_equals_direct_analyzer(self):
        from repro.study.base import analyze_app, clear_cache

        app = build("weborf")
        direct = Analyzer().analyze(
            app.backend(), app.workload("health"),
            app=app.name, app_version=app.version,
        )
        clear_cache()
        try:
            assert analyze_app(app, "health") == direct
        finally:
            clear_cache()
