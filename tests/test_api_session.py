"""Tests for the LoupeSession campaign API (and the study wrappers on it)."""

import threading

import pytest

from repro.api.events import AnalysisEvent, FeatureProbed, render_legacy
from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.backend import SimBackend
from repro.appsim.corpus import build
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.db import Database, RecordKey
from repro.errors import PlanError


class _CountingBackend:
    """Counts runs; declares the sim contract flags so caching works."""

    def __init__(self, inner):
        self._inner = inner
        self.name = inner.name
        self.deterministic = True
        self.parallel_safe = True
        self.runs = 0
        self._lock = threading.Lock()

    def run(self, workload, policy, *, replica=0):
        with self._lock:
            self.runs += 1
        return self._inner.run(workload, policy, replica=replica)


def _counting_request(app_name="weborf", workload="health"):
    app = build(app_name)
    backend = _CountingBackend(SimBackend(app.program))
    request = AnalysisRequest.for_target(
        backend, app.workload(workload),
        app=app.name, app_version=app.version,
    )
    return request, backend


class TestAnalyze:
    def test_analyze_by_app_name(self):
        session = LoupeSession()
        result = session.analyze("redis")
        assert result.app == "redis"
        assert result.workload == "bench"
        assert len(session.database) == 1
        assert session.last_engine_stats is not None
        assert session.last_engine_stats.runs_executed > 0

    def test_analyze_by_request_and_workload_override(self):
        session = LoupeSession()
        result = session.analyze(
            AnalysisRequest(app="weborf"), workload="health"
        )
        assert result.workload == "health"

    def test_workload_override_on_resolved_request_rejected(self):
        request = AnalysisRequest.for_app(build("weborf"), "bench")
        with pytest.raises(ValueError, match="already resolved"):
            LoupeSession().analyze(request, workload="health")
        # a matching override is harmless
        result = LoupeSession().analyze(request, workload="bench")
        assert result.workload == "bench"

    def test_analyze_app_model(self):
        session = LoupeSession()
        result = session.analyze(build("weborf"), workload="health")
        assert result.app == "weborf"
        assert result.app_version

    def test_unintelligible_request_rejected(self):
        with pytest.raises(TypeError, match="analysis request"):
            LoupeSession().analyze(42)

    def test_memoization_returns_canonical_record(self):
        session = LoupeSession()
        request, backend = _counting_request()
        first = session.analyze(request)
        runs_after_first = backend.runs
        second = session.analyze(request)
        assert second is first
        assert backend.runs == runs_after_first  # cache hit: no new runs

    def test_use_cache_false_reruns_and_replaces(self):
        session = LoupeSession()
        request, backend = _counting_request()
        session.analyze(request)
        runs_after_first = backend.runs
        session.analyze(request, use_cache=False)
        assert backend.runs == 2 * runs_after_first
        assert len(session.database) == 1

    def test_config_override_per_call(self):
        session = LoupeSession()
        result = session.analyze(
            "weborf", workload="health",
            config=AnalyzerConfig(replicas=1), use_cache=False,
        )
        assert result.replicas == 1

    def test_semantic_config_change_bypasses_cache(self):
        # replicas changes what an analysis records; a cached 3-replica
        # record must not answer a 5-replica request.
        session = LoupeSession()
        request, backend = _counting_request()
        session.analyze(request)
        runs_after_first = backend.runs
        result = session.analyze(request, config=AnalyzerConfig(replicas=5))
        assert result.replicas == 5
        assert backend.runs > runs_after_first
        assert len(session.database) == 1  # newest record replaced the old

    def test_engine_knob_change_still_hits_cache(self):
        session = LoupeSession()
        request, backend = _counting_request()
        first = session.analyze(request)
        runs_after_first = backend.runs
        second = session.analyze(
            request, config=AnalyzerConfig(parallel=4, cache=False)
        )
        assert second is first
        assert backend.runs == runs_after_first

    def test_cache_hit_leaves_last_stats_untouched(self):
        session = LoupeSession()
        request, _ = _counting_request()
        session.analyze(request)
        stats = session.last_engine_stats
        session.analyze(request)
        assert session.last_engine_stats is stats

    def test_matches_direct_analyzer(self):
        """The session adds memoization, never different conclusions."""
        app = build("weborf")
        direct = Analyzer().analyze(
            app.backend(), app.workload("health"),
            app=app.name, app_version=app.version,
        )
        via_session = LoupeSession().analyze(app, workload="health")
        assert via_session == direct


class TestAnalyzeMany:
    def test_jobs_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            LoupeSession().analyze_many([], jobs=0)

    def test_parallel_matches_serial_in_request_order(self):
        names = ["weborf", "iperf3", "memcached"]
        serial = LoupeSession().analyze_many(
            [AnalysisRequest(app=name, workload="health") for name in names]
        )
        parallel = LoupeSession().analyze_many(
            [AnalysisRequest(app=name, workload="health") for name in names],
            jobs=4,
        )
        assert [r.app for r in serial] == names
        assert parallel == serial

    def test_concurrent_duplicates_keep_one_canonical_record(self):
        session = LoupeSession()
        requests = [
            AnalysisRequest(app="weborf", workload="health")
            for _ in range(6)
        ]
        results = session.analyze_many(requests, jobs=4)
        assert len(session.database) == 1
        canonical = session.query("weborf")[0]
        assert all(result == canonical for result in results)


class TestEventsAndProgress:
    def test_session_progress_renders_legacy_strings(self):
        lines, events = [], []
        session = LoupeSession(progress=lines.append, on_event=events.append)
        session.analyze("weborf", workload="health")
        assert lines == render_legacy(events)
        assert lines[0] == "baseline: 3 passthrough replica(s)"
        assert any(isinstance(e, FeatureProbed) for e in events)

    def test_per_call_on_event_composes_with_session_callback(self):
        session_events, call_events = [], []
        session = LoupeSession(on_event=session_events.append)
        session.analyze(
            "weborf", workload="health", on_event=call_events.append
        )
        assert call_events == session_events
        assert all(isinstance(e, AnalysisEvent) for e in call_events)

    def test_cache_hit_emits_no_events(self):
        events = []
        session = LoupeSession(on_event=events.append)
        session.analyze("weborf", workload="health")
        events.clear()
        session.analyze("weborf", workload="health")
        assert events == []


class TestDatabaseOwnership:
    def test_external_database_is_used(self):
        database = Database(metadata={"submitter": "test"})
        session = LoupeSession(database=database)
        session.analyze("weborf", workload="health")
        assert session.database is database
        assert len(database) == 1

    def test_clear_swaps_in_fresh_database(self):
        session = LoupeSession()
        session.analyze("weborf", workload="health")
        session.clear()
        assert len(session.database) == 0

    def test_query_filters(self):
        session = LoupeSession()
        session.analyze("weborf", workload="health")
        session.analyze("iperf3", workload="health")
        assert len(session.query()) == 2
        assert [r.app for r in session.query("weborf")] == ["weborf"]
        assert session.query("weborf", "health")
        assert session.query("weborf", "bench") == []
        assert session.query(backend="nope") == []

    def test_record_key_matches_stored_result(self):
        session = LoupeSession()
        result = session.analyze("weborf", workload="health")
        assert RecordKey.of(result) in session.database


class TestPlan:
    def test_plan_named_os(self):
        plan = LoupeSession().plan(os_name="unikraft")
        assert plan.steps
        assert {step.app for step in plan.steps}

    def test_plan_unknown_os(self):
        with pytest.raises(PlanError, match="unknown OS 'templeos'"):
            LoupeSession().plan(os_name="templeos")

    def test_plan_explicit_app_models(self):
        apps = [build("redis"), build("nginx")]
        plan = LoupeSession().plan(os_name="unikraft", apps=apps)
        assert {step.app for step in plan.steps} <= {"redis", "nginx"}


class TestStudyWrappers:
    """study.base delegates to a module-default session."""

    def test_analyze_app_populates_shared_database(self):
        from repro.study.base import (
            analyze_app,
            clear_cache,
            default_session,
            shared_database,
        )

        clear_cache()
        result = analyze_app(build("weborf"), "health")
        assert len(shared_database()) == 1
        assert shared_database() is default_session().database
        # memoized: same object back
        assert analyze_app(build("weborf"), "health") is result
        clear_cache()
        assert len(shared_database()) == 0

    def test_analyze_app_equals_direct_analyzer(self):
        from repro.study.base import analyze_app, clear_cache

        app = build("weborf")
        direct = Analyzer().analyze(
            app.backend(), app.workload("health"),
            app=app.name, app_version=app.version,
        )
        clear_cache()
        try:
            assert analyze_app(app, "health") == direct
        finally:
            clear_cache()
