"""Tests for the corpus linter (repro.staticx.rules)."""

import dataclasses

import pytest

from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.corpus import _synthetic_app, build
from repro.core.runner import BackendCapabilities
from repro.db import Database
from repro.plans.state import SupportState
from repro.staticx import rules
from repro.staticx.rules import (
    Finding,
    LintRuleError,
    audit_database,
    exit_code,
    lint_app,
    lint_corpus,
    lint_plan,
    max_severity,
    rule_catalogue,
)


def _with_bad_footprint(app, syscall="frobnicate", level="binary"):
    """A copy of *app* whose static footprint names an unknown syscall."""
    extra = dict(app.program.static_extra)
    extra[level] = extra.get(level, frozenset()) | {syscall}
    return dataclasses.replace(
        app, program=dataclasses.replace(app.program, static_extra=extra)
    )


def _without_workload(app, name):
    return dataclasses.replace(
        app,
        workloads={k: w for k, w in app.workloads.items() if k != name},
    )


class TestFinding:
    def test_describe_and_round_trip(self):
        finding = Finding(
            rule="unknown-syscall", severity="error",
            location="app:x", message="boom",
        )
        assert finding.describe() == "error[unknown-syscall] app:x: boom"
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_catalogue_names_are_unique(self):
        names = [rule.name for rule in rule_catalogue()]
        assert len(names) == len(set(names))
        assert {rule.scope for rule in rule_catalogue()} == {
            "app", "plan", "db"
        }


class TestAppRules:
    def test_shipped_corpus_is_clean(self):
        assert lint_corpus() == []

    def test_unknown_syscall_in_footprint(self):
        findings = lint_app(_with_bad_footprint(build("weborf")))
        assert [f.rule for f in findings] == ["unknown-syscall"]
        assert findings[0].severity == "error"
        assert "frobnicate" in findings[0].message
        assert findings[0].location == "app:weborf"

    def test_dead_branch_when_no_workload_exercises_the_gate(self):
        pruned = _without_workload(build("weborf"), "suite")
        findings = lint_app(pruned, select=["dead-branch"])
        assert findings
        assert all(f.severity == "warning" for f in findings)
        assert all("never execute" in f.message for f in findings)

    def test_unreachable_phase_needs_every_op_dead(self):
        # Dropping the suite workload kills weborf's gated ops, but
        # every lifecycle phase keeps at least one ungated op — so the
        # phase-level rule stays quiet while the op-level rule fires.
        pruned = _without_workload(build("weborf"), "suite")
        assert lint_app(pruned, select=["dead-branch"])
        assert lint_app(pruned, select=["unreachable-phase"]) == []

    def test_capability_mismatch_under_a_narrow_contract(self, monkeypatch):
        # redis declares both sub-features and pseudo-files; against a
        # contract supporting neither, both mismatch findings fire.
        app = build("redis")
        assert lint_app(app, select=["capability-mismatch"]) == []
        monkeypatch.setattr(
            rules, "capabilities_of",
            lambda backend: BackendCapabilities(deterministic=True),
        )
        findings = lint_app(app, select=["capability-mismatch"])
        assert len(findings) == 2
        assert all(f.severity == "error" for f in findings)
        assert any("sub-feature" in f.message for f in findings)
        assert any("pseudo-file" in f.message for f in findings)


class TestSuppression:
    def test_select_narrows_to_one_rule(self):
        bad = _with_bad_footprint(_without_workload(build("weborf"), "suite"))
        all_findings = lint_app(bad)
        assert {f.rule for f in all_findings} == {
            "unknown-syscall", "dead-branch"
        }
        only = lint_app(bad, select=["dead-branch"])
        assert {f.rule for f in only} == {"dead-branch"}

    def test_ignore_suppresses_a_rule(self):
        bad = _with_bad_footprint(build("weborf"))
        assert lint_app(bad, ignore=["unknown-syscall"]) == []

    def test_unknown_rule_name_rejected(self):
        with pytest.raises(LintRuleError, match="unknown lint rule"):
            lint_app(build("weborf"), select=["no-such-rule"])
        with pytest.raises(LintRuleError):
            lint_app(build("weborf"), ignore=["no-such-rule"])


class TestSeverityAndExitCodes:
    def test_clean_pass(self):
        assert max_severity([]) is None
        assert exit_code([]) == 0

    def test_warnings_do_not_gate(self):
        warning = Finding("dead-branch", "warning", "app:x", "m")
        assert max_severity([warning]) == "warning"
        assert exit_code([warning]) == 0

    def test_errors_gate(self):
        error = Finding("unknown-syscall", "error", "app:x", "m")
        warning = Finding("dead-branch", "warning", "app:x", "m")
        assert max_severity([warning, error]) == "error"
        assert exit_code([warning, error]) == 1


class TestPlanRule:
    def test_unsatisfiable_plan_flagged(self):
        state = SupportState(os_name="tiny", implemented={"read", "write"})
        findings = lint_plan(state, [build("weborf")], workload="health")
        assert [f.rule for f in findings] == ["unsatisfiable-plan"]
        assert findings[0].severity == "error"
        assert findings[0].location == "plan:tiny/app:weborf"
        assert "required syscall" in findings[0].message

    def test_complete_plan_is_clean(self):
        from repro.plans.requirements import requirements_for

        app = build("weborf")
        required = requirements_for(app, "health").required
        state = SupportState(os_name="full", implemented=set(required))
        assert lint_plan(state, [app], workload="health") == []


class TestDatabaseAudit:
    def _database_for(self, *requests):
        session = LoupeSession()
        for request in requests:
            session.analyze(request)
        return session.database

    def test_clean_database(self):
        database = self._database_for(
            AnalysisRequest(app="weborf", workload="health")
        )
        assert audit_database(database) == []

    def test_unknown_app_is_a_warning(self):
        database = self._database_for(
            AnalysisRequest.for_app(_synthetic_app(0), "health")
        )
        findings = audit_database(database)
        assert [f.rule for f in findings] == ["unknown-app"]
        assert findings[0].severity == "warning"
        assert "app-000" in findings[0].message

    def test_version_skew_is_a_warning(self):
        database = self._database_for(
            AnalysisRequest(app="weborf", workload="health")
        )
        skewed = Database()
        for record in database:
            skewed.add(dataclasses.replace(record, app_version="0.0.0"))
        findings = audit_database(skewed)
        assert [f.rule for f in findings] == ["version-skew"]
        assert findings[0].severity == "warning"

    def test_soundness_violation_is_an_error(self):
        # Audit a real dynamic record against a hollowed-out model
        # whose footprint lost almost everything: every dynamically
        # observed syscall outside it must hard-error.
        database = self._database_for(
            AnalysisRequest(app="weborf", workload="health")
        )

        class HollowProgram:
            @staticmethod
            def static_view(level):
                return frozenset({"read"})

        class HollowApp:
            program = HollowProgram()

        soundness = next(
            rule for rule in rules.DB_RULES
            if rule.name == "static-soundness"
        )
        findings = []
        for record in database:
            findings.extend(rules._wrap(
                soundness, soundness.check(record, HollowApp(), "binary")
            ))
        assert [f.rule for f in findings] == ["static-soundness"]
        assert findings[0].severity == "error"
        assert "soundness violation" in findings[0].message

    def test_static_records_are_skipped(self):
        # A footprint record's trace IS the footprint, not a dynamic
        # observation — auditing it would be circular, so it's skipped.
        database = self._database_for(AnalysisRequest(
            app="weborf", workload="health", backend="static:source"
        ))
        assert all(
            record.backend.startswith("static:") for record in database
        )
        assert audit_database(database, level="source") == []

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            audit_database(Database(), level="quantum")
