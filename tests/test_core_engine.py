"""Tests for the probe execution engine (parallel scheduling + caching).

Covers the satellite checklist: determinism under ``parallel>1`` (the
same :class:`AnalysisResult` as a serial run), cache hit accounting,
early-exit correctness on both execution paths, and the
stability/equality semantics of ``InterpositionPolicy.fingerprint()``.
"""

import json
import threading
from collections import Counter

import pytest

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, fallback, harmless, ignore
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.engine import EngineStats, ProbeEngine
from repro.core.policy import (
    Action,
    InterpositionPolicy,
    combined,
    faking,
    passthrough,
    stubbing,
)
from repro.core.replicas import run_replicas
from repro.core.runner import BackendCapabilities, ResourceUsage, RunResult
from repro.core.workload import benchmark, health_check


class _CountingBackend:
    """Deterministic backend that counts executions per (policy, replica)."""

    name = "sim:counting"
    deterministic = True
    parallel_safe = True

    def capabilities(self):
        # Read through the attributes so subclasses tweak one flag
        # (deterministic=False, parallel_safe=False) and the contract
        # follows.
        return BackendCapabilities(
            deterministic=self.deterministic,
            parallel_safe=self.parallel_safe,
            process_safe=getattr(self, "process_safe", False),
        )

    def __init__(self, failing_features=()):
        self.failing_features = frozenset(failing_features)
        self.calls = 0
        self.lock = threading.Lock()

    def run(self, workload, policy, *, replica=0):
        with self.lock:
            self.calls += 1
        failed = bool(policy.altered_features() & self.failing_features)
        return RunResult(
            success=not failed,
            traced=Counter({"read": 1 + replica}),
            metric=None if failed else 100.0 + replica,
            resources=ResourceUsage(fd_peak=10, mem_peak_kb=1000),
            failure_reason="poisoned feature" if failed else None,
        )


class TestFingerprint:
    def test_construction_order_irrelevant(self):
        one = combined(stubs=["close", "uname"], fakes=["prctl"])
        other = (
            passthrough()
            .with_feature("prctl", Action.FAKE)
            .with_feature("uname", Action.STUB)
            .with_feature("close", Action.STUB)
        )
        assert one.fingerprint() == other.fingerprint()

    def test_explicit_passthrough_matches_absence(self):
        explicit = passthrough().with_feature("close", Action.PASSTHROUGH)
        assert explicit.fingerprint() == passthrough().fingerprint()
        assert passthrough().fingerprint() == "passthrough"

    def test_action_changes_fingerprint(self):
        assert stubbing("close").fingerprint() != faking("close").fingerprint()
        assert stubbing("close").fingerprint() != stubbing("uname").fingerprint()

    def test_granularities_never_collide(self):
        syscall = stubbing("fcntl")
        subfeature = stubbing("fcntl:F_SETFD")
        pseudo = stubbing("/proc/self")
        prints = {p.fingerprint() for p in (syscall, subfeature, pseudo)}
        assert len(prints) == 3

    def test_shadowing_passthrough_is_significant(self):
        """An explicit PASSTHROUGH overriding a coarser STUB must count."""
        stub_all = stubbing("fcntl")
        carve_out = stub_all.with_feature("fcntl:F_SETFD", Action.PASSTHROUGH)
        assert carve_out.fingerprint() != stub_all.fingerprint()
        assert (
            carve_out.action_for("fcntl", "F_SETFD") is Action.PASSTHROUGH
        )
        proc = stubbing("/proc")
        proc_carved = proc.with_feature("/proc/sys", Action.PASSTHROUGH)
        assert proc_carved.fingerprint() != proc.fingerprint()
        # ...but a PASSTHROUGH with nothing coarser to shadow is inert.
        inert = passthrough().with_feature("fcntl:F_SETFD", Action.PASSTHROUGH)
        assert inert.fingerprint() == passthrough().fingerprint()
        inert_path = passthrough().with_feature("/proc/sys", Action.PASSTHROUGH)
        assert inert_path.fingerprint() == passthrough().fingerprint()

    def test_stable_across_copies(self):
        policy = combined(stubs=["close"], fakes=["uname"])
        rebuilt = InterpositionPolicy(
            syscall_actions=dict(policy.syscall_actions)
        )
        assert policy.fingerprint() == rebuilt.fingerprint()


class TestCacheAccounting:
    def test_repeat_probe_served_from_cache(self):
        backend = _CountingBackend()
        engine = ProbeEngine(cache=True)
        workload = benchmark("b", "m")
        engine.run_replicas(backend, workload, stubbing("close"), 3)
        assert backend.calls == 3
        engine.run_replicas(backend, workload, stubbing("close"), 3)
        assert backend.calls == 3  # all three replicas were cache hits
        stats = engine.stats
        assert stats == EngineStats(
            runs_requested=6, runs_executed=3, cache_hits=3, replicas_skipped=0
        )
        assert stats.hit_rate == pytest.approx(0.5)

    def test_nondeterministic_backend_never_cached(self):
        """Backends not declaring determinism bypass the cache entirely."""

        class _UndeclaredBackend(_CountingBackend):
            deterministic = False

        backend = _UndeclaredBackend()
        engine = ProbeEngine(cache=True)
        workload = benchmark("b", "m")
        for _ in range(2):
            engine.run_replicas(backend, workload, stubbing("close"), 2)
        assert backend.calls == 4
        assert engine.stats.cache_hits == 0
        assert engine.cached_runs() == 0

    def test_cache_disabled_reexecutes(self):
        backend = _CountingBackend()
        engine = ProbeEngine(cache=False)
        workload = benchmark("b", "m")
        for _ in range(2):
            engine.run_replicas(backend, workload, stubbing("close"), 2)
        assert backend.calls == 4
        assert engine.stats.cache_hits == 0

    def test_equivalent_policies_share_entries(self):
        backend = _CountingBackend()
        engine = ProbeEngine(cache=True)
        workload = benchmark("b", "m")
        engine.run_replicas(
            backend, workload, combined(stubs=["close", "uname"]), 1
        )
        rebuilt = (
            passthrough()
            .with_feature("uname", Action.STUB)
            .with_feature("close", Action.STUB)
        )
        engine.run_replicas(backend, workload, rebuilt, 1)
        assert backend.calls == 1

    def test_lru_eviction(self):
        backend = _CountingBackend()
        engine = ProbeEngine(cache=True, cache_size=2)
        workload = benchmark("b", "m")
        for feature in ("close", "uname", "prctl"):
            engine.run_replicas(backend, workload, stubbing(feature), 1)
        assert engine.cached_runs() == 2
        engine.run_replicas(backend, workload, stubbing("close"), 1)  # evicted
        assert backend.calls == 4

    def test_reset_drops_cache_and_stats(self):
        backend = _CountingBackend()
        engine = ProbeEngine(cache=True)
        workload = benchmark("b", "m")
        engine.run_replicas(backend, workload, stubbing("close"), 2)
        engine.reset()
        assert engine.cached_runs() == 0
        assert engine.stats == EngineStats()
        engine.run_replicas(backend, workload, stubbing("close"), 2)
        assert backend.calls == 4

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            ProbeEngine(parallel=0)
        with pytest.raises(ValueError):
            ProbeEngine(cache_size=0)
        with pytest.raises(ValueError):
            ProbeEngine().run_replicas(
                _CountingBackend(), benchmark("b", "m"), passthrough(), 0
            )


class TestEarlyExit:
    def test_serial_stops_after_first_failure(self):
        backend = _CountingBackend(failing_features={"close"})
        engine = ProbeEngine(cache=False)
        outcome = engine.run_replicas(
            backend, benchmark("b", "m"), stubbing("close"), 3
        )
        assert not outcome.all_succeeded
        assert backend.calls == 1
        assert engine.stats.replicas_skipped == 2

    def test_serial_early_exit_disabled(self):
        backend = _CountingBackend(failing_features={"close"})
        engine = ProbeEngine(cache=False)
        outcome = engine.run_replicas(
            backend, benchmark("b", "m"), stubbing("close"), 3,
            early_exit=False,
        )
        assert not outcome.all_succeeded
        assert backend.calls == 3
        assert engine.stats.replicas_skipped == 0

    def test_parallel_backend_error_propagates(self):
        """A backend exception ends the probe on both execution paths."""

        class _ExplodingBackend(_CountingBackend):
            def run(self, workload, policy, *, replica=0):
                if replica == 0:
                    raise RuntimeError("backend blew up")
                return super().run(workload, policy, replica=replica)

        backend = _ExplodingBackend()
        with ProbeEngine(parallel=3, cache=False) as engine:
            with pytest.raises(RuntimeError, match="blew up"):
                engine.run_replicas(
                    backend, benchmark("b", "m"), stubbing("close"), 3
                )
            # The engine stays usable for the next probe.
            outcome = engine.run_replicas(
                _CountingBackend(), benchmark("b", "m"), stubbing("close"), 3
            )
            assert outcome.all_succeeded

    def test_parallel_failure_still_conservative(self):
        backend = _CountingBackend(failing_features={"close"})
        with ProbeEngine(parallel=3, cache=False) as engine:
            outcome = engine.run_replicas(
                backend, benchmark("b", "m"), stubbing("close"), 3
            )
        assert not outcome.all_succeeded
        assert backend.calls <= 3

    def test_unsafe_backend_forced_serial(self):
        """Backends not declaring parallel_safe never overlap replicas.

        Observable through early-exit accounting: the serial path skips
        the replicas after a failure, the parallel path submits them
        all up front.
        """

        class _UnsafeBackend(_CountingBackend):
            parallel_safe = False

        backend = _UnsafeBackend(failing_features={"close"})
        with ProbeEngine(parallel=3, cache=False) as engine:
            engine.run_replicas(
                backend, benchmark("b", "m"), stubbing("close"), 3
            )
        assert backend.calls == 1
        assert engine.stats.replicas_skipped == 2

    def test_run_replicas_function_early_exits(self):
        backend = _CountingBackend(failing_features={"close"})
        outcome = run_replicas(
            backend, benchmark("b", "m"), stubbing("close"), 3
        )
        assert not outcome.all_succeeded
        assert backend.calls == 1
        backend2 = _CountingBackend(failing_features={"close"})
        run_replicas(
            backend2, benchmark("b", "m"), stubbing("close"), 3,
            early_exit=False,
        )
        assert backend2.calls == 3


def _program(ops, name="crafted", features=frozenset({"core"}), profiles=None):
    return SimProgram(
        name=name,
        version="1",
        ops=tuple(ops),
        features=features,
        profiles=profiles or {"*": WorkloadProfile(metric=1000.0)},
    )


def _op(syscall, **kwargs):
    kwargs.setdefault("on_stub", ignore())
    kwargs.setdefault("on_fake", harmless())
    return SyscallOp(syscall=syscall, **kwargs)


def _mixed_program():
    return _program(
        [
            _op("read", on_stub=abort(), on_fake=breaks_core()),
            _op("close", on_stub=ignore(), on_fake=harmless()),
            _op("uname", on_stub=ignore(), on_fake=breaks_core()),
            _op("prctl", on_stub=abort(), on_fake=harmless()),
        ]
    )


def _conflicting_program():
    inner = _op("mmap", on_stub=abort(), on_fake=breaks_core())
    return _program(
        [
            _op("mremap", on_stub=fallback(inner), on_fake=harmless()),
            _op("mmap", on_stub=fallback(
                _op("mremap", on_stub=abort(), on_fake=breaks_core())
            ), on_fake=breaks_core()),
            _op("close", on_stub=ignore(), on_fake=harmless()),
        ]
    )


def _result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


class TestAnalyzerIntegration:
    def _analyze(self, program, workload, **knobs):
        analyzer = Analyzer(AnalyzerConfig(**knobs))
        result = analyzer.analyze(SimBackend(program), workload)
        return result, analyzer.engine.stats

    def test_parallel_matches_serial_analysis(self):
        workload = benchmark("bench", metric_name="req/s")
        serial, _ = self._analyze(
            _mixed_program(), workload,
            parallel=1, cache=False, early_exit=False,
        )
        for knobs in (
            dict(parallel=1, cache=True, early_exit=True),
            dict(parallel=4, cache=True, early_exit=True),
            dict(parallel=4, cache=False, early_exit=False),
        ):
            variant, _ = self._analyze(_mixed_program(), workload, **knobs)
            assert _result_json(variant) == _result_json(serial), knobs

    def test_parallel_matches_serial_on_conflicts(self):
        serial, _ = self._analyze(
            _conflicting_program(), health_check("health"),
            parallel=1, cache=False, early_exit=False,
        )
        parallel, _ = self._analyze(
            _conflicting_program(), health_check("health"),
            parallel=4, cache=True,
        )
        assert _result_json(parallel) == _result_json(serial)
        assert parallel.conflicts

    def test_bisection_reuses_probe_runs(self):
        """The confirmation/bisection stages must hit the run cache."""
        result, stats = self._analyze(
            _conflicting_program(), health_check("health"), cache=True
        )
        assert result.final_run_ok
        assert stats.cache_hits > 0
        assert stats.runs_executed < stats.runs_requested

    def test_early_exit_saves_runs(self):
        _, eager = self._analyze(
            _mixed_program(), health_check("health"),
            cache=False, early_exit=True,
        )
        _, full = self._analyze(
            _mixed_program(), health_check("health"),
            cache=False, early_exit=False,
        )
        assert eager.replicas_skipped > 0
        assert eager.runs_executed < full.runs_executed

    def test_baseline_failure_reports_every_replica(self):
        """The baseline never early-exits: all failure reasons surface."""
        from repro.errors import AnalysisError

        class _FlakyBaselineBackend(_CountingBackend):
            def run(self, workload, policy, *, replica=0):
                super().run(workload, policy, replica=replica)
                ok = replica == 0
                return RunResult(
                    success=ok,
                    traced=Counter({"read": 1}),
                    failure_reason=None if ok else f"reason-{replica}",
                )

        with pytest.raises(AnalysisError) as error:
            Analyzer().analyze(
                _FlakyBaselineBackend(), health_check("health")
            )
        assert "reason-1" in str(error.value)
        assert "reason-2" in str(error.value)

    def test_engine_reset_between_analyses(self):
        """Same backend/workload names, different program: no bleed-through."""
        analyzer = Analyzer(AnalyzerConfig(cache=True))
        benign = analyzer.analyze(
            SimBackend(_program([_op("close")])), health_check("health")
        )
        assert benign.features["close"].decision.can_stub
        hostile = analyzer.analyze(
            SimBackend(_program([_op("close", on_stub=abort())])),
            health_check("health"),
        )
        assert not hostile.features["close"].decision.can_stub

    def test_progress_narrates_engine(self):
        lines = []
        Analyzer().analyze(
            SimBackend(_mixed_program()), health_check("health"),
            progress=lines.append,
        )
        assert any(line.startswith("engine:") for line in lines)


def _stats_invariant(stats):
    return stats.runs_requested == (
        stats.runs_executed + stats.cache_hits + stats.replicas_skipped
    )


class TestStatsInvariant:
    """Regression pin for the early-exit accounting invariant.

    A future that completes between the failure and the ``cancel()``
    sweep used to be neither counted as skipped nor consistently
    reflected in ``runs_executed``; accounting now charges requests up
    front and balances with whatever was actually obtained, so
    ``requested == executed + hits + skipped`` holds on every executor
    no matter how the cancellation race resolves.
    """

    class _SlowFailingBackend(_CountingBackend):
        """Replica 0 fails fast; siblings linger so some are mid-flight
        (past cancellation) when the failure is observed."""

        deterministic = False

        def run(self, workload, policy, *, replica=0):
            import time

            if replica > 0:
                time.sleep(0.002 * replica)
            result = super().run(workload, policy, replica=replica)
            if replica == 0:
                return RunResult(
                    success=False, traced=Counter({"read": 1}),
                    failure_reason="replica 0 fails",
                )
            return result

    def test_parallel_early_exit_race(self):
        for _ in range(10):
            backend = self._SlowFailingBackend()
            with ProbeEngine(parallel=4, cache=False) as engine:
                outcome = engine.run_replicas(
                    backend, benchmark("b", "m"), stubbing("close"), 6
                )
            stats = engine.stats
            assert not outcome.all_succeeded
            assert stats.runs_requested == 6
            assert _stats_invariant(stats), stats
            # Stragglers that won the race are executed, not skipped.
            assert stats.runs_executed == backend.calls

    def test_invariant_across_scenarios(self):
        scenarios = [
            dict(parallel=1, cache=True, early_exit=True),
            dict(parallel=1, cache=False, early_exit=False),
            dict(parallel=4, cache=True, early_exit=True),
            dict(parallel=4, cache=False, early_exit=True),
        ]
        for knobs in scenarios:
            engine = ProbeEngine(
                parallel=knobs["parallel"], cache=knobs["cache"]
            )
            with engine:
                backend = _CountingBackend(failing_features={"close"})
                for policy in (stubbing("close"), stubbing("uname"),
                               stubbing("close")):
                    engine.run_replicas(
                        backend, benchmark("b", "m"), policy, 3,
                        early_exit=knobs["early_exit"],
                    )
            assert _stats_invariant(engine.stats), (knobs, engine.stats)

    def test_batch_invariant_with_cached_failures(self):
        backend = _CountingBackend(failing_features={"close"})
        with ProbeEngine(parallel=4, cache=True) as engine:
            policies = [stubbing("close"), stubbing("uname"),
                        stubbing("prctl")]
            engine.run_probe_batch(
                backend, benchmark("b", "m"), policies, 3
            )
            # Second pass: the failure is answered from the cache, so
            # siblings are skipped without ever being submitted.
            engine.run_probe_batch(
                backend, benchmark("b", "m"), policies, 3
            )
        assert _stats_invariant(engine.stats), engine.stats


class TestProbeBatch:
    def test_serial_batch_matches_sequential_runs(self):
        policies = [stubbing("close"), stubbing("uname"), stubbing("prctl")]
        one_by_one = ProbeEngine(cache=False)
        sequential = [
            one_by_one.run_replicas(
                _CountingBackend(), benchmark("b", "m"), policy, 2
            )
            for policy in policies
        ]
        batched_engine = ProbeEngine(cache=False)
        batched = batched_engine.run_probe_batch(
            _CountingBackend(), benchmark("b", "m"), policies, 2
        )
        assert [o.results for o in batched] == [o.results for o in sequential]
        assert one_by_one.stats == batched_engine.stats

    def test_empty_batch(self):
        engine = ProbeEngine()
        assert engine.run_probe_batch(
            _CountingBackend(), benchmark("b", "m"), [], 3
        ) == []
        assert engine.stats == EngineStats()

    def test_parallel_batch_outcomes_in_policy_order(self):
        policies = [stubbing("uname"), stubbing("close"), stubbing("prctl")]
        backend = _CountingBackend(failing_features={"close"})
        with ProbeEngine(parallel=4, cache=False) as engine:
            outcomes = engine.run_probe_batch(
                backend, benchmark("b", "m"), policies, 2
            )
        assert [o.all_succeeded for o in outcomes] == [True, False, True]

    def test_batch_early_exit_is_per_probe(self):
        """One probe's failure must not skip another probe's replicas."""
        policies = [stubbing("close"), stubbing("uname")]
        backend = _CountingBackend(failing_features={"close"})
        with ProbeEngine(parallel=2, cache=False) as engine:
            outcomes = engine.run_probe_batch(
                backend, benchmark("b", "m"), policies, 3
            )
        assert not outcomes[0].all_succeeded
        assert outcomes[1].all_succeeded
        assert outcomes[1].replica_count == 3


class TestEngineLifecycle:
    def test_reset_refetches_shared_pool_at_current_width(self):
        from repro.core import engine as engine_module

        engine_module.shutdown_worker_pools()
        try:
            engine = ProbeEngine(parallel=2, cache=False)
            engine.run_replicas(
                _CountingBackend(), benchmark("b", "m"), stubbing("close"), 2
            )
            assert engine_module._THREAD_POOL is not None
            assert engine_module._THREAD_POOL_WIDTH == 2
            engine.parallel = 4
            engine.reset()
            engine.run_replicas(
                _CountingBackend(), benchmark("b", "m"), stubbing("close"), 2
            )
            # The widened engine grew the shared pool on re-fetch.
            assert engine_module._THREAD_POOL_WIDTH == 4
            engine.close()
        finally:
            engine_module.shutdown_worker_pools()

    def test_parallel_is_a_per_engine_bound_despite_wider_shared_pool(self):
        """The shared pool only grows; a narrower engine must still
        never run more than its own `parallel` backend runs at once
        (bounded lazy submission)."""
        import time as time_module

        from repro.core import engine as engine_module

        engine_module.shutdown_worker_pools()
        try:
            wide = ProbeEngine(parallel=8, cache=False)
            wide.run_replicas(
                _CountingBackend(), benchmark("b", "m"), stubbing("close"), 8
            )
            assert engine_module._THREAD_POOL_WIDTH == 8

            class _ConcurrencyProbe(_CountingBackend):
                def __init__(self):
                    super().__init__()
                    self.in_flight = 0
                    self.peak = 0

                def run(self, workload, policy, *, replica=0):
                    with self.lock:
                        self.in_flight += 1
                        self.peak = max(self.peak, self.in_flight)
                    time_module.sleep(0.005)
                    try:
                        return super().run(workload, policy, replica=replica)
                    finally:
                        with self.lock:
                            self.in_flight -= 1

            backend = _ConcurrencyProbe()
            narrow = ProbeEngine(parallel=2, cache=False)
            narrow.run_probe_batch(
                backend, benchmark("b", "m"),
                [stubbing("close"), stubbing("uname"), stubbing("prctl")],
                2,
            )
            assert backend.calls == 6
            assert backend.peak <= 2, backend.peak
        finally:
            engine_module.shutdown_worker_pools()

    def test_thread_submission_recovers_from_concurrent_pool_shutdown(
        self, monkeypatch
    ):
        """shutdown_worker_pools() may run while another thread is
        mid-batch; the submit loop must re-fetch the replacement pool
        instead of aborting the analysis on the shut one."""
        from repro.core import engine as engine_module

        engine_module.shutdown_worker_pools()
        real = engine_module._shared_thread_pool
        dead = engine_module._new_thread_pool(2)
        dead.shutdown()
        fetches = []

        def flaky(width):
            fetches.append(width)
            if len(fetches) == 1:
                return dead  # simulate a pool shut down mid-batch
            return real(width)

        monkeypatch.setattr(engine_module, "_shared_thread_pool", flaky)
        try:
            backend = _CountingBackend()
            engine = ProbeEngine(parallel=2, cache=False)
            outcomes = engine.run_probe_batch(
                backend, benchmark("b", "m"),
                [stubbing("close"), stubbing("uname")], 2,
            )
            assert all(o.all_succeeded for o in outcomes)
            assert backend.calls == 4
            assert len(fetches) == 2  # one stale fetch, one recovery
            assert _stats_invariant(engine.stats), engine.stats
        finally:
            engine_module.shutdown_worker_pools()

    def test_thread_pool_shared_across_engines(self):
        """Probe threads are a process-wide budget: every engine uses
        one shared pool (so analyze_many's app-level jobs and
        probe-level parallelism compose instead of multiplying),
        engine.close() leaves it running, and a wider engine grows it
        instead of stacking a second pool."""
        from repro.core import engine as engine_module

        engine_module.shutdown_worker_pools()
        try:
            backend = SimBackend(_mixed_program())
            workload = benchmark("b", "m")
            with ProbeEngine(parallel=2, cache=False) as one:
                one.run_replicas(backend, workload, stubbing("close"), 2)
                first = engine_module._THREAD_POOL
            assert first is not None  # close() left the shared pool alone
            with ProbeEngine(parallel=2, cache=False) as two:
                two.run_replicas(backend, workload, stubbing("close"), 2)
                assert engine_module._THREAD_POOL is first
                assert two._pool("thread") is one._pool("thread")
            with ProbeEngine(parallel=4, cache=False) as wide:
                wide.run_replicas(backend, workload, stubbing("close"), 4)
                grown = engine_module._THREAD_POOL
                assert grown is not first
                assert grown._max_workers == 4
        finally:
            engine_module.shutdown_worker_pools()
            assert engine_module._THREAD_POOL is None

    def test_close_idempotent_and_reusable(self):
        engine = ProbeEngine(parallel=2, cache=False)
        engine.close()
        engine.close()
        outcome = engine.run_replicas(
            _CountingBackend(), benchmark("b", "m"), stubbing("close"), 2
        )
        assert outcome.all_succeeded
        engine.close()

    def test_analyzer_context_manager_closes_engine(self):
        from repro.core import engine as engine_module

        with Analyzer(AnalyzerConfig(parallel=2)) as analyzer:
            analyzer.analyze(
                SimBackend(_mixed_program()), health_check("health")
            )
        # close() released the engine without tearing down the shared
        # probe pool — it keeps serving the process's other engines.
        assert engine_module._THREAD_POOL is not None

    def test_bad_executor_rejected(self):
        with pytest.raises(ValueError):
            ProbeEngine(executor="fibers")
        with pytest.raises(ValueError):
            AnalyzerConfig(executor="fibers")

    def test_executor_name_resolution(self):
        assert ProbeEngine().executor_name == "serial"
        assert ProbeEngine(parallel=4).executor_name == "thread"
        assert ProbeEngine(parallel=4, executor="serial").executor_name \
            == "serial"
        assert ProbeEngine(parallel=4, executor="process").executor_name \
            == "process"

    def test_process_pool_shared_across_engines(self):
        """Worker processes are expensive: every engine shares one
        pool, engine.close() leaves it running, and a wider engine
        grows it instead of stacking a second pool."""
        from repro.core import engine as engine_module

        engine_module.shutdown_process_pool()
        backend = SimBackend(_mixed_program())
        workload = benchmark("b", "m")
        with ProbeEngine(parallel=2, executor="process", cache=False) as one:
            one.run_replicas(backend, workload, stubbing("close"), 2)
            first = engine_module._PROCESS_POOL
        assert first is not None  # close() left the shared pool alone
        with ProbeEngine(parallel=2, executor="process", cache=False) as two:
            two.run_replicas(backend, workload, stubbing("close"), 2)
            assert engine_module._PROCESS_POOL is first
        with ProbeEngine(parallel=4, executor="process", cache=False) as wide:
            wide.run_replicas(backend, workload, stubbing("close"), 4)
            grown = engine_module._PROCESS_POOL
            assert grown is not first
            assert grown._max_workers == 4
        engine_module.shutdown_process_pool()
        assert engine_module._PROCESS_POOL is None

    def test_shardability_checked_once_per_backend(self, monkeypatch):
        """The pickle round-trip runs once per backend object, not on
        every scheduling call."""
        from repro.core import engine as engine_module

        calls = []
        real = engine_module.process_shardable

        def counting(backend, **kwargs):
            calls.append(backend)
            return real(backend, **kwargs)

        monkeypatch.setattr(engine_module, "process_shardable", counting)
        backend = SimBackend(_mixed_program())
        with ProbeEngine(parallel=2, executor="process", cache=False) as engine:
            for _ in range(3):
                engine.run_replicas(
                    backend, benchmark("b", "m"), stubbing("close"), 2
                )
            assert len(calls) == 1
            engine.reset()
            engine.run_replicas(
                backend, benchmark("b", "m"), stubbing("close"), 2
            )
            assert len(calls) == 2  # reset dropped the memoized verdict


class TestStudyParallelism:
    def test_analyze_apps_jobs_match_serial(self):
        from repro.appsim.corpus import seven_apps
        from repro.study.base import analyze_apps, clear_cache

        apps = seven_apps()[:3]
        clear_cache()
        serial = analyze_apps(apps, "bench")
        clear_cache()
        threaded = analyze_apps(apps, "bench", jobs=3, parallel=2)
        clear_cache()
        assert [r.app for r in threaded] == [r.app for r in serial]
        for left, right in zip(serial, threaded):
            assert _result_json(left) == _result_json(right)

    def test_concurrent_analyze_app_single_record(self):
        from repro.appsim.corpus import build
        from repro.study.base import analyze_app, clear_cache, shared_database

        clear_cache()
        app = build("weborf")
        results = []
        errors = []

        def worker():
            try:
                results.append(analyze_app(app, "health"))
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 6
        assert len(shared_database()) == 1
        clear_cache()

    def test_bad_jobs_rejected(self):
        from repro.study.base import analyze_apps

        with pytest.raises(ValueError):
            analyze_apps([], "bench", jobs=0)
