"""Tests for replica orchestration and aggregation."""

from collections import Counter

import pytest

from repro.core.policy import passthrough
from repro.core.replicas import run_replicas
from repro.core.runner import ResourceUsage, RunResult
from repro.core.workload import benchmark


class _ScriptedBackend:
    """Returns pre-scripted results, one per replica index."""

    name = "sim:scripted"

    def __init__(self, results):
        self.results = results
        self.calls = 0

    def run(self, workload, policy, *, replica=0):
        self.calls += 1
        return self.results[replica]


def _run(success=True, metric=100.0, fd=10, mem=1000, traced=None):
    return RunResult(
        success=success,
        traced=Counter(traced or {"read": 1}),
        metric=metric,
        resources=ResourceUsage(fd_peak=fd, mem_peak_kb=mem),
    )


class TestRunReplicas:
    def test_all_success(self):
        backend = _ScriptedBackend([_run(), _run(), _run()])
        outcome = run_replicas(backend, benchmark("b", "m"), passthrough(), 3)
        assert outcome.all_succeeded
        assert outcome.replica_count == 3
        assert backend.calls == 3

    def test_single_failure_disqualifies(self):
        backend = _ScriptedBackend([_run(), _run(success=False), _run()])
        outcome = run_replicas(backend, benchmark("b", "m"), passthrough(), 3)
        assert not outcome.all_succeeded

    def test_zero_replicas_rejected(self):
        with pytest.raises(ValueError):
            run_replicas(_ScriptedBackend([]), benchmark("b", "m"), passthrough(), 0)

    def test_metric_samples_skip_none(self):
        backend = _ScriptedBackend([_run(metric=10.0), _run(metric=None)])
        outcome = run_replicas(backend, benchmark("b", "m"), passthrough(), 2)
        assert outcome.metric_samples == (10.0,)

    def test_resource_samples(self):
        backend = _ScriptedBackend([_run(fd=10, mem=100), _run(fd=20, mem=200)])
        outcome = run_replicas(backend, benchmark("b", "m"), passthrough(), 2)
        assert outcome.fd_samples == (10.0, 20.0)
        assert outcome.mem_samples == (100.0, 200.0)

    def test_union_traced_takes_max(self):
        backend = _ScriptedBackend(
            [
                _run(traced={"read": 5, "write": 1}),
                _run(traced={"read": 2, "close": 3}),
            ]
        )
        outcome = run_replicas(backend, benchmark("b", "m"), passthrough(), 2)
        union = outcome.union_traced()
        assert union["read"] == 5
        assert union["write"] == 1
        assert union["close"] == 3

    def test_failure_reasons_collected(self):
        failing = RunResult(
            success=False, traced=Counter(), failure_reason="broken pipe"
        )
        backend = _ScriptedBackend([_run(), failing])
        outcome = run_replicas(backend, benchmark("b", "m"), passthrough(), 2)
        assert outcome.failure_reasons() == ("broken pipe",)
