"""Fault-tolerance tests: policy, guarded execution, chaos, recovery.

Covers the robustness layer end to end:

* :class:`FaultPolicy` validation, activation, and deterministic
  backoff jitter;
* :func:`guarded_run` classification (timeout / backend-error /
  torn-result), bounded retries, and quarantine records;
* :class:`ChaosBackend` — seeded deterministic injection, wrong-answer
  flips, and the parent-pid crash guard;
* the engine accounting invariant ``requested == executed +
  cache_hits + skipped + faulted`` under chaos, on every executor
  (hypothesis-driven);
* byte-identical degraded campaigns across serial/thread/process,
  including a real worker crash recovered mid-batch;
* the ``undecided`` verdict flow, its serialization, and the
  ``undecided-in-target`` cross-validation divergence;
* ``loupe cache verify`` (clean store, planted corruption, seeded
  sampling) and the SQLite lock-retry helper;
* the fault events' wire format and the BrokenPipe-safe emitter.
"""

import argparse
import dataclasses
import json
import pickle
import sqlite3
import time
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.events import (
    EngineStatsEvent,
    FaultsSummary,
    PoolRecovered,
    ProbeFaulted,
    ProbeRetry,
)
from repro.api.registry import (
    BackendRegistryError,
    create_target,
    register_chaos,
    unregister_backend,
)
from repro.api.session import AnalysisRequest
from repro.appsim.backend import SimBackend
from repro.appsim.behavior import harmless, ignore
from repro.appsim.corpus import build
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer, AnalyzerConfig
from repro.core.cachestore import (
    JsonlRunCache,
    SqliteRunCache,
    VerifyReport,
    verify_store,
)
from repro.core.cachestore import sqlite as sqlite_store
from repro.core.decisions import Verdict
from repro.core.engine import ProbeEngine
from repro.core.faults import (
    FAULT_BACKEND_ERROR,
    FAULT_TIMEOUT,
    FAULT_TORN_RESULT,
    ChaosBackend,
    ChaosError,
    ChaosSpec,
    FaultNotice,
    FaultPolicy,
    PoolRecoveredNotice,
    ProbeFault,
    ProbeFaultError,
    RetryNotice,
    guarded_run,
    probe_key,
)
from repro.core.policy import passthrough, stubbing
from repro.core.result import AnalysisResult
from repro.core.runner import ResourceUsage, RunResult, backend_name
from repro.core.workload import health_check
from repro.errors import AnalysisError
from repro.report import (
    UNDECIDED_IN_TARGET,
    CrossValidationReport,
    cross_validate,
)

_SYSCALLS = ("read", "close", "uname", "prctl")

_PROGRAM = SimProgram(
    name="faulty",
    version="1",
    ops=tuple(
        SyscallOp(syscall=syscall, on_stub=ignore(), on_fake=harmless())
        for syscall in _SYSCALLS
    ),
    profiles={"*": WorkloadProfile(metric=500.0)},
)

_WORKLOAD = health_check("health")


def _result(success=True, metric=100.0):
    return RunResult(
        success=success,
        traced=Counter({"read": 3}),
        metric=metric if success else None,
        resources=ResourceUsage(fd_peak=12, mem_peak_kb=2048),
        exit_code=0 if success else 1,
        failure_reason=None if success else "boom",
    )


class _FlakyBackend:
    """Raises on the first *fail_times* calls, then succeeds."""

    name = "sim:flaky"
    deterministic = False
    parallel_safe = True

    def __init__(self, fail_times):
        self.fail_times = fail_times
        self.calls = 0

    def run(self, workload, policy, *, replica=0):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise RuntimeError("transient backend hiccup")
        return _result()


class _HangingBackend:
    name = "sim:hanging"

    def run(self, workload, policy, *, replica=0):
        time.sleep(5.0)
        return _result()


class _TornBackend:
    name = "sim:torn"

    def run(self, workload, policy, *, replica=0):
        return {"not": "a RunResult"}


class TestFaultPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPolicy(probe_timeout_s=0)
        with pytest.raises(ValueError):
            FaultPolicy(retries=-1)
        with pytest.raises(ValueError):
            FaultPolicy(retry_backoff_s=-0.1)
        with pytest.raises(ValueError):
            FaultPolicy(on_fault="explode")

    def test_activation(self):
        assert not FaultPolicy().active
        assert FaultPolicy(probe_timeout_s=1.0).active
        assert FaultPolicy(retries=1).active
        assert FaultPolicy(on_fault="degrade").active
        assert FaultPolicy(retries=2).attempts == 3

    def test_config_validates_fault_fields(self):
        with pytest.raises(ValueError):
            AnalyzerConfig(on_fault="explode")
        with pytest.raises(ValueError):
            AnalyzerConfig(probe_timeout_s=-1.0)
        assert AnalyzerConfig().fault_policy() is None
        policy = AnalyzerConfig(retries=2, on_fault="degrade").fault_policy()
        assert policy is not None and policy.degrade

    def test_backoff_deterministic_when_seeded(self):
        policy = FaultPolicy(retries=3, retry_backoff_s=0.1, jitter_seed=7)
        first = [policy.backoff_delay(n, "key") for n in (1, 2, 3)]
        again = [policy.backoff_delay(n, "key") for n in (1, 2, 3)]
        assert first == again
        # Exponential envelope with jitter in [1.0, 1.5) of the base.
        for attempt, delay in enumerate(first, start=1):
            base = 0.1 * 2 ** (attempt - 1)
            assert base <= delay < 1.5 * base
        # A different probe key jitters differently (same envelope).
        assert policy.backoff_delay(1, "other") != first[0]

    def test_backoff_zero_base_never_sleeps(self):
        policy = FaultPolicy(retries=2, retry_backoff_s=0.0)
        assert policy.backoff_delay(1, "key") == 0.0


class TestGuardedRun:
    def test_retry_then_success(self):
        backend = _FlakyBackend(fail_times=1)
        outcome = guarded_run(
            backend, _WORKLOAD, stubbing("close"), 0,
            FaultPolicy(retries=2, retry_backoff_s=0.0),
        )
        assert not outcome.faulted
        assert outcome.result == _result()
        assert len(outcome.failures) == 1
        assert outcome.failures[0].kind == FAULT_BACKEND_ERROR
        assert backend.calls == 2

    def test_exhausted_backend_error(self):
        backend = _FlakyBackend(fail_times=10)
        policy = stubbing("close")
        outcome = guarded_run(
            backend, _WORKLOAD, policy, 1,
            FaultPolicy(retries=1, retry_backoff_s=0.0),
        )
        assert outcome.faulted and outcome.result is None
        assert len(outcome.failures) == 2
        fault = outcome.fault(_WORKLOAD, policy, 1)
        assert fault.kind == FAULT_BACKEND_ERROR
        assert fault.workload == "health" and fault.replica == 1
        assert fault.attempts == 2
        assert "RuntimeError" in fault.detail
        assert len(fault.durations_s) == 2

    def test_timeout_classified_and_abandoned(self):
        outcome = guarded_run(
            _HangingBackend(), _WORKLOAD, stubbing("close"), 0,
            FaultPolicy(probe_timeout_s=0.05),
        )
        assert outcome.faulted
        assert outcome.failures[0].kind == FAULT_TIMEOUT
        assert "0.05s" in outcome.failures[0].detail

    def test_torn_result_classified(self):
        outcome = guarded_run(
            _TornBackend(), _WORKLOAD, stubbing("close"), 0,
            FaultPolicy(retries=0, on_fault="degrade"),
        )
        assert outcome.faulted
        assert outcome.failures[0].kind == FAULT_TORN_RESULT
        assert "dict" in outcome.failures[0].detail

    def test_probe_fault_round_trips(self):
        fault = ProbeFault(
            workload="health", probe="stub:close", replica=2,
            kind=FAULT_TIMEOUT, attempts=3, durations_s=(0.1, 0.2, 0.1),
            detail="no result within 0.1s",
        )
        assert ProbeFault.from_dict(json.loads(json.dumps(fault.to_dict()))) == fault
        assert "stub:close" in fault.describe()
        assert "[timeout]" in fault.describe()

    def test_probe_fault_error_pickles(self):
        fault = ProbeFault(
            workload="health", probe="stub:close", replica=0,
            kind=FAULT_BACKEND_ERROR, attempts=1, detail="boom",
        )
        error = pickle.loads(pickle.dumps(ProbeFaultError(fault)))
        assert isinstance(error, ProbeFaultError)
        assert error.fault == fault


class TestChaosBackend:
    def test_error_injection_targets_altered_features_only(self):
        spec = ChaosSpec(seed=1, error_features=frozenset({"close"}))
        chaos = ChaosBackend(SimBackend(_PROGRAM), spec)
        with pytest.raises(ChaosError):
            chaos.run(_WORKLOAD, stubbing("close"))
        # The passthrough baseline is never injected.
        assert chaos.run(_WORKLOAD, passthrough()).success
        # Other probes pass through untouched.
        assert chaos.run(_WORKLOAD, stubbing("read")).success

    def test_wrong_answer_flip(self):
        spec = ChaosSpec(seed=1, flip_features=frozenset({"read"}))
        chaos = ChaosBackend(SimBackend(_PROGRAM), spec)
        honest = SimBackend(_PROGRAM).run(_WORKLOAD, stubbing("read"))
        flipped = chaos.run(_WORKLOAD, stubbing("read"))
        assert honest.success
        assert not flipped.success
        assert flipped.failure_reason == "chaos: wrong-answer flip"

    def test_error_rate_is_seeded_and_deterministic(self):
        spec = ChaosSpec(seed=9, error_rate=0.5)
        def injected(chaos):
            raised = set()
            for syscall in _SYSCALLS:
                for replica in range(3):
                    try:
                        chaos.run(_WORKLOAD, stubbing(syscall), replica=replica)
                    except ChaosError:
                        raised.add((syscall, replica))
            return raised
        first = injected(ChaosBackend(SimBackend(_PROGRAM), spec))
        again = injected(ChaosBackend(SimBackend(_PROGRAM), spec))
        assert first == again
        assert 0 < len(first) < len(_SYSCALLS) * 3
        other = injected(ChaosBackend(
            SimBackend(_PROGRAM), dataclasses.replace(spec, seed=10)
        ))
        assert first != other

    def test_crash_guard_never_kills_the_scheduling_process(self):
        spec = ChaosSpec(seed=1, crash_features=frozenset({"close"}))
        chaos = ChaosBackend(SimBackend(_PROGRAM), spec)
        # Inline execution (serial/thread executors) hits the pid
        # guard: the run proceeds normally instead of os._exit()ing.
        assert chaos.run(_WORKLOAD, stubbing("close")).success

    def test_capabilities_and_name_delegate(self):
        chaos = ChaosBackend(SimBackend(_PROGRAM), ChaosSpec())
        assert chaos.capabilities().deterministic
        assert backend_name(chaos) == "chaos:sim:faulty-1"

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(hang_s=0)
        with pytest.raises(ValueError):
            ChaosSpec(error_rate=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(crash_after=0)


class TestEngineFaultHandling:
    def test_fail_mode_raises_probe_fault_error(self):
        spec = ChaosSpec(seed=1, error_features=frozenset({"close"}))
        chaos = ChaosBackend(SimBackend(_PROGRAM), spec)
        engine = ProbeEngine(
            cache=False,
            fault_policy=FaultPolicy(retries=1, retry_backoff_s=0.0),
        )
        with pytest.raises(ProbeFaultError) as caught:
            engine.run_replicas(chaos, _WORKLOAD, stubbing("close"), 2)
        assert caught.value.fault.kind == FAULT_BACKEND_ERROR
        assert caught.value.fault.attempts == 2

    def test_degrade_quarantines_and_notifies(self):
        spec = ChaosSpec(seed=1, error_features=frozenset({"close"}))
        chaos = ChaosBackend(SimBackend(_PROGRAM), spec)
        notices = []
        engine = ProbeEngine(
            cache=False,
            fault_policy=FaultPolicy(
                retries=1, retry_backoff_s=0.0, on_fault="degrade",
            ),
            on_notice=notices.append,
        )
        outcome = engine.run_replicas(chaos, _WORKLOAD, stubbing("close"), 2)
        assert outcome.undecided and not outcome.all_succeeded
        assert len(outcome.faults) == 2
        stats = engine.stats
        assert stats.faulted == 2
        assert stats.runs_requested == (
            stats.runs_executed + stats.cache_hits
            + stats.replicas_skipped + stats.faulted
        )
        retries = [n for n in notices if isinstance(n, RetryNotice)]
        faults = [n for n in notices if isinstance(n, FaultNotice)]
        assert len(retries) == 2 and len(faults) == 2
        assert all(n.attempt == 1 for n in retries)

    def test_inactive_policy_keeps_raw_exception_types(self):
        """The historical contract: no policy, no wrapping."""
        backend = _FlakyBackend(fail_times=10)
        engine = ProbeEngine(cache=False, fault_policy=FaultPolicy())
        with pytest.raises(RuntimeError, match="hiccup"):
            engine.run_replicas(backend, _WORKLOAD, stubbing("close"), 1)


class TestAccountingInvariantProperty:
    """The satellite property: the stats ledger balances under chaos,
    on every executor, whatever faults land where."""

    @settings(max_examples=20, deadline=None)
    @given(
        error_features=st.sets(st.sampled_from(_SYSCALLS), max_size=2),
        error_rate=st.sampled_from((0.0, 0.3)),
        executor=st.sampled_from(("serial", "thread", "process")),
        replicas=st.integers(1, 3),
        retries=st.integers(0, 1),
        seed=st.integers(0, 5),
    )
    def test_requested_equals_executed_hits_skipped_faulted(
        self, error_features, error_rate, executor, replicas, retries, seed
    ):
        spec = ChaosSpec(
            seed=seed,
            error_features=frozenset(error_features),
            error_rate=error_rate,
        )
        chaos = ChaosBackend(SimBackend(_PROGRAM), spec)
        policy = FaultPolicy(
            retries=retries, retry_backoff_s=0.0, on_fault="degrade",
            jitter_seed=0,
        )
        with ProbeEngine(
            parallel=1 if executor == "serial" else 3,
            executor=executor,
            fault_policy=policy,
        ) as engine:
            for syscall in _SYSCALLS:
                engine.run_replicas(
                    chaos, _WORKLOAD, stubbing(syscall), replicas
                )
                stats = engine.stats
                assert stats.runs_requested == (
                    stats.runs_executed + stats.cache_hits
                    + stats.replicas_skipped + stats.faulted
                ), stats.describe()

    @settings(max_examples=6, deadline=None)
    @given(
        error_features=st.sets(
            st.sampled_from(_SYSCALLS), min_size=1, max_size=2
        ),
        seed=st.integers(0, 3),
    )
    def test_degraded_reports_identical_serial_vs_thread(
        self, error_features, seed
    ):
        spec = ChaosSpec(seed=seed, error_features=frozenset(error_features))
        documents = {}
        for executor in ("serial", "thread"):
            with Analyzer(AnalyzerConfig(
                replicas=2,
                parallel=1 if executor == "serial" else 3,
                executor=executor,
                retries=0,
                on_fault="degrade",
                fault_seed=0,
            )) as analyzer:
                result = analyzer.analyze(
                    ChaosBackend(SimBackend(_PROGRAM), spec), _WORKLOAD
                )
            for feature in error_features:
                assert result.features[feature].verdict is Verdict.UNDECIDED
            documents[executor] = _strip_fault_durations(result.to_dict())
        assert documents["serial"] == documents["thread"]


def _strip_fault_durations(document):
    """Fault wall-clock is measurement, not outcome: identical
    campaigns legitimately differ in how long each attempt took."""
    document = json.loads(json.dumps(document))
    for fault in document.get("faults", ()):
        fault["durations_s"] = []
    return document


class TestChaosCampaignAcrossExecutors:
    """The acceptance campaign: hangs + errors + a real worker crash,
    under degrade, byte-identical on serial, thread, and process."""

    def test_campaign_byte_identical_and_fully_accounted(self, tmp_path):
        app = build("redis")

        def run(executor):
            spec = ChaosSpec(
                seed=7,
                hang_features=frozenset({"futex"}),
                hang_s=0.2,
                error_features=frozenset({"getpid"}),
                crash_features=frozenset({"ioctl"}),
                crash_marker=str(tmp_path / f"crash-{executor}"),
            )
            with Analyzer(AnalyzerConfig(
                replicas=2,
                parallel=1 if executor == "serial" else 3,
                executor=executor,
                probe_timeout_s=0.05,
                retries=1,
                retry_backoff_s=0.001,
                on_fault="degrade",
                fault_seed=3,
            )) as analyzer:
                result = analyzer.analyze(
                    ChaosBackend(app.backend(), spec),
                    app.workload("health"),
                    app=app.name,
                )
                stats = analyzer.engine.stats
            assert stats.runs_requested == (
                stats.runs_executed + stats.cache_hits
                + stats.replicas_skipped + stats.faulted
            ), executor
            assert stats.faulted == len(result.faults), executor
            return result

        reference = run("serial")
        kinds = {fault.kind for fault in reference.faults}
        assert FAULT_TIMEOUT in kinds          # the hang, guarded
        assert FAULT_BACKEND_ERROR in kinds    # the injected error
        undecided = {
            feature
            for feature, report in reference.features.items()
            if report.verdict is Verdict.UNDECIDED
        }
        assert {"futex", "getpid"} <= undecided
        reference_doc = _strip_fault_durations(reference.to_dict())
        for executor in ("thread", "process"):
            variant = run(executor)
            assert _strip_fault_durations(variant.to_dict()) == reference_doc, (
                executor
            )
        # The crash injection really fired in a worker process — and
        # was recovered without changing the report.
        assert (tmp_path / "crash-process").exists()
        assert not (tmp_path / "crash-serial").exists()


class TestWorkerCrashRecovery:
    def test_crash_recovered_without_losing_or_doubling_runs(self, tmp_path):
        app = build("redis")
        spec = ChaosSpec(
            seed=1,
            crash_features=frozenset({"futex"}),
            crash_marker=str(tmp_path / "crashed"),
        )
        notices = []
        with ProbeEngine(
            parallel=2,
            executor="process",
            cache=False,
            fault_policy=FaultPolicy(
                retries=1, retry_backoff_s=0.0, on_fault="degrade",
            ),
            on_notice=notices.append,
        ) as engine:
            outcome = engine.run_replicas(
                ChaosBackend(app.backend(), spec),
                app.workload("health"),
                stubbing("futex"), 2, early_exit=False,
            )
            stats = engine.stats
        assert (tmp_path / "crashed").exists()
        recoveries = [
            n for n in notices if isinstance(n, PoolRecoveredNotice)
        ]
        assert recoveries and sum(n.lost_runs for n in recoveries) >= 1
        assert stats.faulted == 0  # recovered, not quarantined
        assert stats.runs_requested == (
            stats.runs_executed + stats.cache_hits
            + stats.replicas_skipped + stats.faulted
        )
        # The recovered probe answers exactly like an uninjected serial
        # run (the pid guard makes in-process chaos a no-op).
        serial = ProbeEngine(cache=False).run_replicas(
            ChaosBackend(app.backend(), spec),
            app.workload("health"),
            stubbing("futex"), 2, early_exit=False,
        )
        assert [r.to_dict() for r in outcome.results] == [
            r.to_dict() for r in serial.results
        ]


class TestUndecidedVerdictFlow:
    def test_undecided_flow_events_and_roundtrip(self):
        app = build("redis")
        spec = ChaosSpec(seed=1, error_features=frozenset({"getpid"}))
        events = []
        with Analyzer(AnalyzerConfig(
            replicas=2, retries=1, retry_backoff_s=0.0,
            on_fault="degrade", fault_seed=0,
        )) as analyzer:
            result = analyzer.analyze(
                ChaosBackend(app.backend(), spec),
                app.workload("health"),
                on_event=events.append,
            )
        report = result.features["getpid"]
        assert report.verdict is Verdict.UNDECIDED
        assert report.decision.undecided
        assert not report.decision.can_stub and not report.decision.can_fake
        assert not report.verdict.avoidable
        assert result.faults
        assert all(f.kind == FAULT_BACKEND_ERROR for f in result.faults)
        assert "probe undecided" in json.dumps(result.to_dict())

        rebuilt = AnalysisResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.features["getpid"].verdict is Verdict.UNDECIDED
        assert rebuilt.faults == result.faults

        retries = [e for e in events if isinstance(e, ProbeRetry)]
        faulted = [e for e in events if isinstance(e, ProbeFaulted)]
        summaries = [e for e in events if isinstance(e, FaultsSummary)]
        assert retries and all(e.kind == "probe_retry" for e in retries)
        assert len(faulted) == len(result.faults)
        assert all(e.attempts == 2 for e in faulted)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.total == len(result.faults)
        assert summary.kinds == {FAULT_BACKEND_ERROR: len(result.faults)}
        assert [
            ProbeFault.from_dict(doc) for doc in summary.faults
        ] == list(result.faults)
        stats_events = [e for e in events if isinstance(e, EngineStatsEvent)]
        assert stats_events[-1].faulted == len(result.faults)

    def test_fault_free_campaign_emits_no_fault_events(self):
        app = build("redis")
        events = []
        with Analyzer(AnalyzerConfig(
            replicas=1, retries=1, on_fault="degrade",
        )) as analyzer:
            result = analyzer.analyze(
                app.backend(), app.workload("health"),
                on_event=events.append,
            )
        assert not result.faults
        assert "faults" not in result.to_dict()
        assert not any(
            isinstance(e, (ProbeRetry, ProbeFaulted, FaultsSummary))
            for e in events
        )
        stats_event = [
            e for e in events if isinstance(e, EngineStatsEvent)
        ][-1]
        assert "faulted" not in stats_event.to_dict()

    def test_faulted_baseline_aborts_with_fault_detail(self):
        spec = ChaosSpec(seed=0, error_rate=1.0)
        with pytest.raises(AnalysisError, match="without interposition"):
            with Analyzer(AnalyzerConfig(
                replicas=1, retries=0, on_fault="degrade",
            )) as analyzer:
                analyzer.analyze(
                    ChaosBackend(SimBackend(_PROGRAM), spec), _WORKLOAD
                )

    def test_cross_validation_flags_undecided_in_target(self):
        app = build("redis")
        with Analyzer(AnalyzerConfig(replicas=1)) as analyzer:
            clean = analyzer.analyze(
                app.backend(), app.workload("health"), app=app.name
            )
        spec = ChaosSpec(seed=1, error_features=frozenset({"getpid"}))
        with Analyzer(AnalyzerConfig(
            replicas=1, on_fault="degrade",
        )) as analyzer:
            chaotic = analyzer.analyze(
                ChaosBackend(app.backend(), spec),
                app.workload("health"),
                app=app.name,
            )
        report = cross_validate(
            [("appsim", clean, True), ("chaos:appsim", chaotic, False)]
        )
        undecided = [
            d for d in report.divergences if d.kind == UNDECIDED_IN_TARGET
        ]
        assert any(d.feature == "getpid" for d in undecided)
        counts = report.divergence_counts()
        assert counts[UNDECIDED_IN_TARGET] == len(undecided)
        rebuilt = CrossValidationReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert rebuilt.to_dict() == report.to_dict()


class TestRegisterChaos:
    def test_register_resolve_and_wrap(self):
        name = register_chaos(
            "appsim", ChaosSpec(seed=5), replace=True
        )
        try:
            assert name == "chaos:appsim"
            target = create_target(name, AnalysisRequest(app="redis"))
            assert isinstance(target.backend, ChaosBackend)
            assert backend_name(target.backend).startswith("chaos:sim:redis")
            assert target.app == "redis"
        finally:
            unregister_backend(name)

    def test_custom_name(self):
        name = register_chaos(
            "appsim", name="mayhem", replace=True
        )
        try:
            assert name == "mayhem"
            target = create_target("mayhem", AnalysisRequest(app="nginx"))
            assert isinstance(target.backend, ChaosBackend)
        finally:
            unregister_backend("mayhem")

    def test_rejects_non_spec(self):
        with pytest.raises(BackendRegistryError, match="ChaosSpec"):
            register_chaos("appsim", spec=object())


def _populate_store(store, features=("getpid", "futex")):
    app = build("redis")
    backend = app.backend()
    workload = app.workload("health")
    with ProbeEngine(cache=True, store=store) as engine:
        for feature in features:
            engine.run_replicas(backend, workload, stubbing(feature), 1)
    return store


class TestCacheVerify:
    def test_clean_store_verifies(self, tmp_path):
        store = _populate_store(JsonlRunCache(tmp_path / "cache.jsonl"))
        report = verify_store(store)
        assert report.ok
        assert report.total == report.checked == report.matched == 2
        assert report.unverifiable == 0
        assert "2 matched, 0 mismatched" in report.describe()

    def test_sqlite_store_verifies(self, tmp_path):
        store = _populate_store(SqliteRunCache(tmp_path / "cache.sqlite"))
        report = verify_store(store)
        assert report.ok and report.matched == report.total == 2

    def test_planted_corruption_detected(self, tmp_path):
        store = _populate_store(JsonlRunCache(tmp_path / "cache.jsonl"))
        key, stored, policy_doc = sorted(store.records())[0]
        tampered = dataclasses.replace(
            stored, success=not stored.success, failure_reason="tampered",
        )
        store.put(key, tampered, policy=policy_doc)
        report = verify_store(store)
        assert not report.ok
        (mismatch,) = report.mismatches
        assert mismatch.key == key
        assert "success" in mismatch.fields
        assert "differ" in mismatch.describe()

    def test_policy_fingerprint_mismatch_detected(self, tmp_path):
        """A policy document that does not describe its key is torn."""
        store = _populate_store(JsonlRunCache(tmp_path / "cache.jsonl"))
        key, stored, _policy_doc = sorted(store.records())[0]
        store.put(key, stored, policy=stubbing("uname").to_dict())
        report = verify_store(store)
        assert not report.ok
        assert report.mismatches[0].fields == ("policy",)

    def test_records_without_policy_or_backend_are_unverifiable(
        self, tmp_path
    ):
        store = _populate_store(JsonlRunCache(tmp_path / "cache.jsonl"))
        store.put(
            ("sim:redis-6.2", "health", "stub:zzz", 0), _result(),
        )
        store.put(
            ("sim:nosuch-1.0", "health", "passthrough", 0), _result(),
            policy=passthrough().to_dict(),
        )
        report = verify_store(store)
        assert report.ok  # absence of evidence is not a mismatch
        assert report.unverifiable == 2
        assert report.checked == 2

    def test_sampling_is_seeded(self, tmp_path):
        store = _populate_store(
            JsonlRunCache(tmp_path / "cache.jsonl"),
            features=("getpid", "futex", "uname", "brk"),
        )
        first = verify_store(store, sample=2, seed=3)
        again = verify_store(store, sample=2, seed=3)
        assert first == again
        assert first.total == 4 and first.checked == 2
        with pytest.raises(ValueError):
            verify_store(store, sample=0)

    def test_cli_verify_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cache.jsonl"
        store = _populate_store(JsonlRunCache(path))
        assert main(["cache", "verify", str(path)]) == 0
        out = capsys.readouterr().out
        assert "2 matched, 0 mismatched" in out

        key, stored, policy_doc = sorted(store.records())[0]
        tampered = dataclasses.replace(
            stored, success=not stored.success, failure_reason="tampered",
        )
        JsonlRunCache(path).put(key, tampered, policy=policy_doc)
        assert main(["cache", "verify", str(path)]) == 1
        out = capsys.readouterr().out
        assert "MISMATCH" in out


class TestSqliteLockRetry:
    def test_transient_lock_retried(self, monkeypatch):
        monkeypatch.setattr(sqlite_store.time, "sleep", lambda delay: None)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise sqlite3.OperationalError("database is locked")
            return "ok"

        assert sqlite_store._retry_locked(flaky) == "ok"
        assert calls["n"] == 3

    def test_persistent_lock_raises_after_budget(self, monkeypatch):
        monkeypatch.setattr(sqlite_store.time, "sleep", lambda delay: None)
        calls = {"n": 0}

        def stuck():
            calls["n"] += 1
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(sqlite3.OperationalError, match="locked"):
            sqlite_store._retry_locked(stuck)
        assert calls["n"] == sqlite_store._LOCK_ATTEMPTS

    def test_non_lock_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise sqlite3.OperationalError("no such table: runs")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            sqlite_store._retry_locked(broken)
        assert calls["n"] == 1


class TestFaultEventWireFormat:
    def test_fault_events_serialize_json_safe(self):
        events = (
            ProbeRetry(
                workload="health", probe="stub:close", replica=1,
                attempt=1, fault=FAULT_TIMEOUT, detail="slow",
            ),
            ProbeFaulted(
                workload="health", probe="stub:close", replica=1,
                fault=FAULT_TIMEOUT, attempts=2, detail="slow",
            ),
            PoolRecovered(lost_runs=3, rebuilds=1),
            FaultsSummary(
                total=1, kinds={FAULT_TIMEOUT: 1},
                faults=({"workload": "health"},),
            ),
        )
        for event in events:
            document = json.loads(json.dumps(event.to_dict()))
            assert document["event"] == event.kind
            # The legacy string transcript ignores fault events.
            assert event.legacy_line() is None

    def test_engine_stats_event_omits_zero_faulted(self):
        from repro.core.engine import EngineStats

        clean = EngineStatsEvent.from_stats(
            EngineStats(runs_requested=2, runs_executed=2)
        )
        assert "faulted" not in clean.to_dict()
        faulty = EngineStatsEvent.from_stats(
            EngineStats(runs_requested=2, runs_executed=1, faulted=1)
        )
        assert faulty.to_dict()["faulted"] == 1
        assert faulty.stats().faulted == 1


class TestJsonlEmitterPipeSafety:
    def test_broken_pipe_suppresses_instead_of_raising(
        self, monkeypatch, capsys
    ):
        from repro import cli
        from repro.core.engine import EngineStats

        emitter = cli._jsonl_emitter(argparse.Namespace(events="jsonl"))
        assert emitter is not None

        class _ClosedPipe:
            def write(self, line):
                raise BrokenPipeError()

            def flush(self):
                pass

        monkeypatch.setattr(cli.sys, "stdout", _ClosedPipe())
        event = EngineStatsEvent.from_stats(EngineStats())
        emitter(event)
        emitter(event)  # second emission is silently dropped
        err = capsys.readouterr().err
        assert err.count("pipe closed") == 1

    def test_no_emitter_without_jsonl_mode(self):
        from repro import cli

        assert cli._jsonl_emitter(argparse.Namespace(events="progress")) is None
