"""Tests for OS support-state tracking and CSV I/O."""

import pytest

from repro.errors import PlanError
from repro.plans.state import SupportState


class TestStateMutation:
    def test_implement_clears_stub_and_fake(self):
        state = SupportState("demo-os", stubbed={"futex"}, faked={"brk"})
        state.implement(["futex", "brk"])
        assert state.implemented == {"futex", "brk"}
        assert not state.stubbed
        assert not state.faked

    def test_stub_skips_implemented(self):
        state = SupportState("demo-os", implemented={"read"})
        state.stub(["read", "uname"])
        assert state.stubbed == {"uname"}

    def test_fake_overrides_stub(self):
        state = SupportState("demo-os", stubbed={"prctl"})
        state.fake(["prctl"])
        assert state.faked == {"prctl"}
        assert not state.stubbed

    def test_handles(self):
        state = SupportState(
            "demo-os", implemented={"read"}, stubbed={"uname"}, faked={"prctl"}
        )
        assert state.handles("read")
        assert state.handles("uname")
        assert state.handles("prctl")
        assert not state.handles("futex")

    def test_counts_and_copy(self):
        state = SupportState("demo-os", implemented={"read", "write"})
        assert state.counts() == (2, 0, 0)
        clone = state.copy()
        clone.implement(["futex"])
        assert "futex" not in state.implemented


class TestValidation:
    def test_unknown_syscall_rejected_at_construction(self):
        with pytest.raises(PlanError):
            SupportState("demo-os", implemented={"warp_speed"})


class TestCsv:
    def test_roundtrip(self, tmp_path):
        state = SupportState(
            "demo-os",
            implemented={"read", "write"},
            stubbed={"uname"},
            faked={"prctl"},
        )
        path = tmp_path / "demo.csv"
        state.save(path)
        loaded = SupportState.load(path)
        assert loaded.implemented == state.implemented
        assert loaded.stubbed == state.stubbed
        assert loaded.faked == state.faked
        assert loaded.os_name == "demo"

    def test_bare_names_mean_implemented(self):
        state = SupportState.from_csv("read\nwrite\n", os_name="min")
        assert state.implemented == {"read", "write"}

    def test_comments_and_blanks_skipped(self):
        text = "# supported\n\nread,implemented\n"
        state = SupportState.from_csv(text)
        assert state.implemented == {"read"}

    def test_bad_status_rejected(self):
        with pytest.raises(PlanError):
            SupportState.from_csv("read,emulated\n")

    def test_bad_syscall_rejected(self):
        with pytest.raises(PlanError):
            SupportState.from_csv("fly,implemented\n")

    def test_csv_is_sorted_and_stable(self):
        state = SupportState("x", implemented={"write", "read"})
        assert state.to_csv() == "read,implemented\nwrite,implemented\n"
