"""Tests for the Table 4 libc-initialization study — exact paper values."""

import pytest

from repro.appsim.libc import GLIBC_228_DYNAMIC, MUSL_122_STATIC
from repro.study.libcinit import render_table4, table4, trace_hello


@pytest.fixture(scope="module")
def table():
    return table4()


class TestPaperExactValues:
    def test_invocation_totals(self, table):
        """Table 4: 28 / 11 / 11 / 6 invocations."""
        assert table.row("glibc", "dynamic").total_invocations == 28
        assert table.row("musl", "dynamic").total_invocations == 11
        assert table.row("glibc", "static").total_invocations == 11
        assert table.row("musl", "static").total_invocations == 6

    def test_distinct_counts(self, table):
        assert table.row("glibc", "dynamic").distinct_syscalls == 13
        assert table.row("musl", "dynamic").distinct_syscalls == 9
        assert table.row("glibc", "static").distinct_syscalls == 8
        assert table.row("musl", "static").distinct_syscalls == 6

    def test_glibc_dynamic_exact_multiset(self, table):
        row = table.row("glibc", "dynamic")
        assert row.invocations == {
            "execve": 1, "brk": 3, "arch_prctl": 1, "exit_group": 1,
            "access": 1, "openat": 2, "fstat": 3, "mmap": 7, "close": 2,
            "read": 1, "mprotect": 4, "munmap": 1, "write": 1,
        }

    def test_musl_dynamic_exact_multiset(self, table):
        row = table.row("musl", "dynamic")
        assert row.invocations == {
            "execve": 1, "brk": 2, "arch_prctl": 1, "exit_group": 1,
            "writev": 1, "mmap": 1, "mprotect": 2, "ioctl": 1,
            "set_tid_address": 1,
        }

    def test_common_sets(self, table):
        """Paper: 6 syscalls common for dynamic, 3 for static, 3 overall."""
        assert table.common_syscalls("dynamic") == {
            "execve", "brk", "arch_prctl", "exit_group", "mmap", "mprotect",
        }
        assert table.common_syscalls("static") == {
            "execve", "arch_prctl", "exit_group",
        }
        assert table.overall_common() == {"execve", "arch_prctl", "exit_group"}

    def test_ratio_claims(self, table):
        """Paper: glibc-dyn issues 2.5x musl-dyn; up to ~4.5x musl-static."""
        assert table.dynamic_ratio() == pytest.approx(28 / 11, rel=0.01)
        assert table.extreme_ratio() == pytest.approx(28 / 6, rel=0.01)
        assert table.extreme_ratio() >= 4.5

    def test_wrapper_choice_visible(self, table):
        """glibc printf -> write; musl printf -> writev (Section 5.6)."""
        assert "write" in table.row("glibc", "dynamic").syscall_set
        assert "writev" in table.row("musl", "dynamic").syscall_set
        assert "write" not in table.row("musl", "dynamic").syscall_set


class TestMechanics:
    def test_trace_single_config(self):
        row = trace_hello(GLIBC_228_DYNAMIC)
        assert row.libc == "glibc"
        assert row.linking == "dynamic"

    def test_musl_static_is_minimal(self):
        row = trace_hello(MUSL_122_STATIC)
        assert row.total_invocations == 6

    def test_render(self, table):
        text = render_table4(table)
        assert "28 invocations" in text
        assert "glibc-dyn/musl-dyn = 2.5x" in text
