"""Tests for the 116-app corpus: determinism and aggregate calibration."""

from collections import Counter

from repro.appsim.corpus import (
    CLOUD_APPS,
    CORPUS_SIZE,
    HANDBUILT,
    SEVEN_APPS,
    build,
    cloud_apps,
    corpus,
    seven_apps,
)


class TestComposition:
    def test_size(self, full_corpus):
        assert len(full_corpus) == CORPUS_SIZE == 116

    def test_hand_built_first(self, full_corpus):
        names = [app.name for app in full_corpus[: len(CLOUD_APPS)]]
        assert names == list(CLOUD_APPS)

    def test_unique_names(self, full_corpus):
        names = [app.name for app in full_corpus]
        assert len(set(names)) == len(names)

    def test_seven_apps_subset_of_cloud(self):
        assert set(SEVEN_APPS) <= set(CLOUD_APPS)
        assert [a.name for a in seven_apps()] == list(SEVEN_APPS)

    def test_fifteen_cloud_apps(self):
        assert len(cloud_apps()) == 15

    def test_build_by_name(self):
        app = build("redis")
        assert app.name == "redis"

    def test_custom_size(self):
        assert len(corpus(20)) == 20


class TestDeterminism:
    def test_same_programs_each_call(self):
        first = corpus(30)
        second = corpus(30)
        for a, b in zip(first, second):
            assert a.name == b.name
            assert a.program.ops == b.program.ops
            assert a.program.static_extra == b.program.static_extra
            assert a.year == b.year


class TestAggregateCalibration:
    def test_traced_union_near_180(self, bench_results):
        """Section 5.1: naive analysis finds ~180 syscalls corpus-wide."""
        union = set()
        for result in bench_results:
            union |= result.traced_syscalls()
        assert 170 <= len(union) <= 205

    def test_required_union_near_148(self, bench_results):
        """Section 5.1: Loupe reports ~148 syscalls needing implementation."""
        union = set()
        for result in bench_results:
            union |= result.required_syscalls()
        assert 125 <= len(union) <= 160

    def test_required_union_smaller_than_traced(self, bench_results):
        traced, required = set(), set()
        for result in bench_results:
            traced |= result.traced_syscalls()
            required |= result.required_syscalls()
        assert required < traced

    def test_common_core_required_everywhere(self, bench_results):
        """execve/mmap are required by essentially every application."""
        counts = Counter()
        for result in bench_results:
            for name in result.required_syscalls():
                counts[name] += 1
        total = len(bench_results)
        assert counts["execve"] == total
        assert counts["mmap"] >= total * 0.95

    def test_avoidable_fraction_realistic(self, bench_results):
        """Section 5.1: 40-60% of invoked syscalls avoid implementation."""
        fractions = [
            len(r.avoidable_syscalls()) / len(r.traced_syscalls())
            for r in bench_results
        ]
        mean = sum(fractions) / len(fractions)
        assert 0.35 <= mean <= 0.70

    def test_every_corpus_app_analyzable(self, bench_results, full_corpus):
        assert len(bench_results) == len(full_corpus)
        for result in bench_results:
            assert result.final_run_ok
