"""Tests for the real ptrace interposition tracer.

All tests are marked ``ptrace`` and skipped automatically when the
environment forbids ptrace(2). They validate the paper's core
mechanism on live processes: tracing, stubbing, faking, whitelisting,
sub-feature decoding, and resource sampling.
"""

import sys

import pytest

from repro.core.policy import combined, faking, passthrough, stubbing
from repro.ptracer.tracer import SyscallTracer

pytestmark = pytest.mark.ptrace


def _trace(policy, argv, **kwargs):
    return SyscallTracer(policy, **kwargs).run(list(argv))


class TestTracing:
    def test_echo_traces_libc_init(self):
        outcome = _trace(passthrough(), ["/bin/echo", "hello"])
        assert outcome.exit_code == 0
        traced = {k for k in outcome.traced if ":" not in k}
        # The glibc startup sequence of Table 4, live.
        assert {"execve", "mmap", "openat", "read", "close", "write"} <= traced

    def test_invocation_counts_positive(self):
        outcome = _trace(passthrough(), ["/bin/echo", "hi"])
        assert all(count > 0 for count in outcome.traced.values())

    def test_subfeature_decoding(self):
        """arch_prctl(ARCH_SET_FS) is decoded live (Section 5.4)."""
        outcome = _trace(passthrough(), ["/bin/echo", "hi"])
        assert outcome.traced.get("arch_prctl:ARCH_SET_FS", 0) >= 1

    def test_resource_sampling(self):
        outcome = _trace(
            passthrough(),
            [sys.executable, "-c", "x = bytearray(4_000_000); print(1)"],
            sample_every=4,
        )
        assert outcome.exit_code == 0
        assert outcome.mem_peak_kb > 3_000

    def test_pseudofile_detection(self):
        outcome = _trace(
            passthrough(),
            [sys.executable, "-c", "open('/proc/self/status').read()"],
        )
        assert any(
            path.startswith("/proc") for path in outcome.pseudo_files
        )

    def test_follows_children(self):
        script = "import os; pid=os.fork(); os.wait() if pid else os._exit(0)"
        outcome = _trace(passthrough(), [sys.executable, "-c", script])
        assert outcome.exit_code == 0


class TestStubbing:
    def test_stub_write_breaks_echo(self):
        """echo checks write's result: stubbing it fails the run."""
        outcome = _trace(stubbing("write"), ["/bin/echo", "x"])
        assert outcome.exit_code != 0

    def test_stub_getrandom_survivable(self):
        """glibc falls back when getrandom is unavailable."""
        outcome = _trace(stubbing("getrandom"), ["/bin/echo", "x"])
        assert outcome.exit_code == 0

    def test_stubbed_syscall_still_traced(self):
        outcome = _trace(stubbing("getrandom"), ["/bin/echo", "x"])
        assert outcome.traced.get("getrandom", 0) >= 0  # traced when invoked


class TestFaking:
    def test_fake_write_lies_successfully(self):
        """Faked write returns the full length: echo exits 0, silently."""
        outcome = _trace(faking("write"), ["/bin/echo", "INVISIBLE"])
        assert outcome.exit_code == 0

    def test_fake_vs_stub_differ_for_write(self):
        stub = _trace(stubbing("write"), ["/bin/echo", "x"])
        fake = _trace(faking("write"), ["/bin/echo", "x"])
        assert stub.exit_code != 0
        assert fake.exit_code == 0

    def test_combined_policy(self):
        policy = combined(stubs=["getrandom"], fakes=["write"])
        outcome = _trace(policy, ["/bin/echo", "x"])
        assert outcome.exit_code == 0


class TestTimeoutAndWhitelist:
    def test_timeout_kills_hung_process(self):
        outcome = _trace(
            passthrough(),
            [sys.executable, "-c", "import time; time.sleep(60)"],
            timeout_s=1.5,
        )
        assert outcome.timed_out

    def test_whitelist_excludes_other_binaries(self):
        """Syscalls from non-whitelisted binaries are not attributed
        (the Ruby-test-suite-calls-git scenario of Section 3.3)."""
        outcome = SyscallTracer(
            passthrough(),
            binaries=frozenset({"/no/such/binary"}),
        ).run(["/bin/echo", "hi"])
        assert outcome.exit_code == 0
        assert not outcome.traced

    def test_whitelist_includes_named_binary(self):
        import os

        echo = os.path.realpath("/bin/echo")
        outcome = SyscallTracer(
            passthrough(), binaries=frozenset({echo})
        ).run(["/bin/echo", "hi"])
        assert outcome.traced
