"""Tests for per-syscall metadata and categories."""

import pytest

from repro.errors import UnknownSyscallError
from repro.syscalls import (
    ALWAYS_SUCCEEDS,
    NO_GLIBC_WRAPPER,
    Category,
    ResourceEffect,
    all_infos,
    category_of,
    exists,
    info,
    is_modern,
)
from repro.syscalls.categories import uncategorized_names


class TestCategories:
    def test_core_classifications(self):
        assert category_of("read") is Category.FILE_IO
        assert category_of("openat") is Category.FILESYSTEM
        assert category_of("mmap") is Category.MEMORY
        assert category_of("futex") is Category.SYNCHRONIZATION
        assert category_of("epoll_wait") is Category.EVENTS
        assert category_of("bind") is Category.NETWORK
        assert category_of("clone") is Category.THREADS
        assert category_of("execve") is Category.PROCESS
        assert category_of("setuid") is Category.IDENTITY
        assert category_of("prlimit64") is Category.RESOURCE_LIMITS

    def test_every_x86_64_syscall_is_categorized(self):
        assert uncategorized_names() == frozenset()

    def test_modern_split_matches_paper(self):
        """Section 5.2: ~150 splits core services from modern features."""
        assert not is_modern(49)      # bind: long-standing core
        assert is_modern(202)         # futex: modern
        assert is_modern(213)         # epoll_create
        assert is_modern(257)         # openat
        assert is_modern(302)         # prlimit64

    def test_unknown_name_falls_back_to_misc(self):
        assert category_of("definitely_not_real") is Category.MISC


class TestResourceEffects:
    def test_fd_allocators(self):
        for name in ("openat", "socket", "accept4", "pipe2", "epoll_create1"):
            assert info(name).resource_effect is ResourceEffect.ALLOCATES_FD

    def test_fd_liberators(self):
        assert info("close").resource_effect is ResourceEffect.FREES_FD

    def test_memory_effects(self):
        assert info("mmap").resource_effect is ResourceEffect.ALLOCATES_MEMORY
        assert info("brk").resource_effect is ResourceEffect.ALLOCATES_MEMORY
        assert info("munmap").resource_effect is ResourceEffect.FREES_MEMORY

    def test_neutral_syscalls(self):
        assert info("getpid").resource_effect is ResourceEffect.NONE
        assert info("futex").resource_effect is ResourceEffect.NONE


class TestWrapperAndFailureFacts:
    def test_paper_no_wrapper_examples(self):
        """Section 5.6: futex and friends have no glibc wrapper."""
        for name in ("futex", "arch_prctl", "set_tid_address", "gettid"):
            assert name in NO_GLIBC_WRAPPER
            assert not info(name).has_glibc_wrapper

    def test_wrapped_syscalls(self):
        for name in ("read", "write", "openat", "socket", "getrlimit"):
            assert info(name).has_glibc_wrapper

    def test_always_succeeds_examples(self):
        """Figure 7: alarm and getppid never have their result checked."""
        assert "alarm" in ALWAYS_SUCCEEDS
        assert "getppid" in ALWAYS_SUCCEEDS
        assert info("alarm").always_succeeds
        assert not info("openat").always_succeeds


class TestInfoLookup:
    def test_by_name_and_number_agree(self):
        assert info("futex") == info(202)

    def test_unknown_raises(self):
        with pytest.raises(UnknownSyscallError):
            info("bogus")
        with pytest.raises(UnknownSyscallError):
            info(54321)

    def test_all_infos_sorted_and_complete(self):
        infos = all_infos()
        numbers = [entry.number for entry in infos]
        assert numbers == sorted(numbers)
        assert len(infos) > 350

    def test_exists(self):
        assert exists("openat")
        assert not exists("openat3")

    def test_vectored_flag(self):
        assert info("fcntl").is_vectored
        assert info("ioctl").is_vectored
        assert not info("read").is_vectored
