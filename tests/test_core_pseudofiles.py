"""Tests for pseudo-file detection and classification."""

import pytest

from repro.core.pseudofiles import (
    KNOWN_PSEUDO_FILES,
    OPEN_FAMILY,
    PseudoFileAccess,
    classify,
    extract_accesses,
    is_pseudo_path,
)


class TestPathClassification:
    def test_pseudo_prefixes(self):
        assert is_pseudo_path("/proc/meminfo")
        assert is_pseudo_path("/dev/urandom")
        assert is_pseudo_path("/sys/devices/system/cpu/online")

    def test_regular_paths(self):
        assert not is_pseudo_path("/etc/passwd")
        assert not is_pseudo_path("/home/user/proc")
        assert not is_pseudo_path("relative/proc")

    def test_prefix_must_be_component(self):
        assert not is_pseudo_path("/procfoo")
        assert not is_pseudo_path("/devices")

    def test_bare_prefix_counts(self):
        assert is_pseudo_path("/proc")
        assert is_pseudo_path("/dev")

    def test_classify(self):
        assert classify("/proc/self/status") == "/proc"
        assert classify("/dev/null") == "/dev"
        assert classify("/etc/hosts") == ""


class TestKnownFiles:
    def test_known_files_are_pseudo(self):
        for path in KNOWN_PSEUDO_FILES:
            assert is_pseudo_path(path)

    def test_paper_examples_present(self):
        assert "/dev/random" in KNOWN_PSEUDO_FILES
        assert "/proc/self/status" in KNOWN_PSEUDO_FILES


class TestAccessExtraction:
    def test_open_family_contents(self):
        assert "openat" in OPEN_FAMILY
        assert "open" in OPEN_FAMILY
        assert "stat" in OPEN_FAMILY
        assert "read" not in OPEN_FAMILY

    def test_extract_filters_and_counts(self):
        observations = [
            ("openat", "/dev/urandom"),
            ("openat", "/dev/urandom"),
            ("openat", "/etc/passwd"),        # regular file: ignored
            ("stat", "/proc/self/status"),
            ("read", "/dev/null"),            # not open-family: ignored
        ]
        accesses = extract_accesses(observations)
        as_dict = {(a.path, a.syscall): a.count for a in accesses}
        assert as_dict == {
            ("/dev/urandom", "openat"): 2,
            ("/proc/self/status", "stat"): 1,
        }

    def test_access_validates_path(self):
        with pytest.raises(ValueError):
            PseudoFileAccess(path="/etc/passwd", syscall="openat")

    def test_empty_observations(self):
        assert extract_accesses([]) == []
