"""Tests for the cross-backend validation report (repro.report)."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.registry import register_backend, unregister_backend
from repro.api.session import AnalysisRequest, LoupeSession
from repro.appsim.backend import SimBackend
from repro.appsim.behavior import abort, breaks_core, harmless, ignore
from repro.appsim.program import SimProgram, SyscallOp, WorkloadProfile
from repro.core.analyzer import Analyzer
from repro.core.workload import health_check
from repro.report import (
    COUNT_ONLY,
    EXTRA_IN_SIM,
    MISSING_IN_SIM,
    STABILITY_DIFFERS,
    VERDICT_DIFFERS,
    CrossValidationReport,
    TargetObservation,
    cross_validate,
    render_cross_validation,
)


def _program(ops, name="crafted", version="1"):
    return SimProgram(
        name=name,
        version=version,
        ops=tuple(ops),
        profiles={"*": WorkloadProfile(metric=1000.0)},
    )


def _op(syscall, count=1, **kwargs):
    kwargs.setdefault("on_stub", ignore())
    kwargs.setdefault("on_fake", harmless())
    return SyscallOp(syscall=syscall, count=count, **kwargs)


def _analyze(ops, name="crafted"):
    program = _program(ops, name=name)
    return Analyzer().analyze(
        SimBackend(program), health_check("health"),
        app=name, app_version="1",
    )


class TestDivergenceClassification:
    def test_identical_results_have_no_divergences(self):
        result = _analyze([_op("read"), _op("close")])
        report = cross_validate(
            [("a", result, False), ("b", result, False)]
        )
        assert report.agrees
        assert report.divergences == ()
        assert report.reference == "a"
        assert report.targets == ("a", "b")

    def test_missing_and_extra_in_sim(self):
        reference = _analyze([_op("read"), _op("futex")])
        target = _analyze([_op("read"), _op("uname")])
        report = cross_validate(
            [("real", reference, True), ("sim", target, False)]
        )
        kinds = {(d.kind, d.feature) for d in report.divergences}
        assert (MISSING_IN_SIM, "futex") in kinds
        assert (EXTRA_IN_SIM, "uname") in kinds
        missing = [d for d in report.divergences if d.kind == MISSING_IN_SIM]
        assert missing[0].reference == "real"
        assert missing[0].target == "sim"
        assert "never by sim" in missing[0].detail

    def test_count_only_divergence(self):
        reference = _analyze([_op("read", count=8), _op("close")])
        target = _analyze([_op("read", count=2), _op("close")])
        report = cross_validate(
            [("real", reference, True), ("sim", target, False)]
        )
        count_only = [
            d for d in report.divergences if d.kind == COUNT_ONLY
        ]
        assert [d.feature for d in count_only] == ["read"]
        assert "8x by real" in count_only[0].detail
        assert "2x by sim" in count_only[0].detail
        # count-only is the benign class: the sets themselves agree.
        assert not any(
            d.kind in (MISSING_IN_SIM, EXTRA_IN_SIM)
            for d in report.divergences
        )

    def test_verdict_divergence(self):
        reference = _analyze([_op("read"), _op("close")])
        target = _analyze([
            _op("read"),
            _op("close", on_stub=abort(), on_fake=breaks_core()),
        ])
        report = cross_validate(
            [("real", reference, True), ("sim", target, False)]
        )
        verdicts = [
            d for d in report.divergences if d.kind == VERDICT_DIFFERS
        ]
        assert [d.feature for d in verdicts] == ["close"]
        assert verdicts[0].dimension == "verdict"
        assert "stub=ok" in verdicts[0].detail
        assert "stub=no" in verdicts[0].detail

    def test_reference_prefers_real_execution(self):
        result = _analyze([_op("read")])
        report = cross_validate(
            [("sim", result, False), ("real", result, True)]
        )
        assert report.reference == "real"

    def test_stability_divergence(self):
        import dataclasses

        result = _analyze([_op("read")])
        flipped = dataclasses.replace(result, final_run_ok=False)
        report = cross_validate(
            [("real", result, True), ("sim", flipped, False)]
        )
        stability = [
            d for d in report.divergences if d.kind == STABILITY_DIFFERS
        ]
        assert len(stability) == 1
        assert stability[0].dimension == "stability"
        assert "failed on sim" in stability[0].detail

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            cross_validate([])


class TestSerialization:
    def test_report_round_trips_through_json(self):
        reference = _analyze([_op("read", count=4), _op("futex")])
        target = _analyze([_op("read"), _op("uname")])
        report = cross_validate(
            [("real", reference, True), ("sim", target, False)]
        )
        payload = json.loads(json.dumps(report.to_dict()))
        rebuilt = CrossValidationReport.from_dict(payload)
        assert rebuilt == report
        assert rebuilt.to_dict() == report.to_dict()

    def test_observation_round_trip(self):
        result = _analyze([_op("read")])
        observation = TargetObservation.from_result(
            "appsim", result, real_execution=False
        )
        rebuilt = TargetObservation.from_dict(
            json.loads(json.dumps(observation.to_dict()))
        )
        assert rebuilt == observation

    def test_divergence_counts(self):
        reference = _analyze([_op("read", count=8), _op("futex")])
        target = _analyze([_op("read", count=2), _op("uname")])
        report = cross_validate(
            [("real", reference, True), ("sim", target, False)]
        )
        counts = report.divergence_counts()
        assert counts[MISSING_IN_SIM] == 1
        assert counts[EXTRA_IN_SIM] == 1
        assert counts[COUNT_ONLY] == 1
        assert sum(counts.values()) == len(report.divergences)
        assert report.for_target("sim") == report.divergences


class TestRendering:
    def test_render_agreement(self):
        result = _analyze([_op("read")])
        text = render_cross_validation(cross_validate(
            [("a", result, False), ("b", result, False)]
        ))
        assert "cross-validation: crafted/health across a, b" in text
        assert "(reference: a)" in text
        assert "backends agree" in text

    def test_render_divergences(self):
        reference = _analyze([_op("read"), _op("futex")])
        target = _analyze([_op("read"), _op("uname")])
        text = render_cross_validation(cross_validate(
            [("real", reference, True), ("sim", target, False)]
        ))
        assert "divergences (2)" in text
        assert "[missing-in-sim] syscalls futex" in text
        assert "[extra-in-sim] syscalls uname" in text


class TestSelfValidationProperty:
    """The acceptance property: fanning one workload across the same
    backend twice must always produce a zero-divergence report."""

    @settings(max_examples=8, deadline=None)
    @given(
        app=st.sampled_from(["weborf", "iperf3", "memcached"]),
        spelling=st.sampled_from([
            "appsim,appsim", " appsim , appsim ", "appsim,appsim,appsim",
        ]),
    )
    def test_same_backend_twice_never_diverges(self, app, spelling):
        session = LoupeSession()
        report = session.analyze(AnalysisRequest(
            app=app, workload="health", backend=spelling
        ))
        assert isinstance(report, CrossValidationReport)
        assert report.divergences == ()
        assert report.agrees

    @settings(max_examples=4, deadline=None)
    @given(app=st.sampled_from(["weborf", "iperf3"]))
    def test_registered_alias_never_diverges(self, app):
        """Two distinct registry entries backed by the same factory
        fan out into two real targets and still fully agree."""
        import repro.appsim as appsim

        register_backend(
            "appsim-alias", appsim._appsim_backend_factory, replace=True
        )
        try:
            report = LoupeSession().analyze(AnalysisRequest(
                app=app, workload="health",
                backends=("appsim", "appsim-alias"),
            ))
            assert report.targets == ("appsim", "appsim-alias")
            assert report.agrees
        finally:
            unregister_backend("appsim-alias")


class TestStaticDivergences:
    """Static pseudo-backend legs: over-approximation vs soundness."""

    def test_overapproximation_is_the_expected_direction(self):
        from repro.report import SOUNDNESS_VIOLATION, STATIC_OVERAPPROXIMATION

        static = _analyze([_op("read"), _op("close"), _op("mmap")])
        dynamic = _analyze([_op("read", count=5), _op("close")])
        report = cross_validate([
            ("static", static, False, True),
            ("appsim", dynamic, False, False),
        ])
        kinds = {(d.kind, d.feature) for d in report.divergences}
        assert (STATIC_OVERAPPROXIMATION, "mmap") in kinds
        # Counts, verdicts, stability never compare against a
        # footprint — the only divergence class is the expected one.
        assert {d.kind for d in report.divergences} == {
            STATIC_OVERAPPROXIMATION
        }
        assert report.soundness_violations() == ()
        assert not report.agrees

    def test_soundness_violation_is_flagged_and_rendered(self):
        from repro.report import SOUNDNESS_VIOLATION

        static = _analyze([_op("read")])
        dynamic = _analyze([_op("read"), _op("write", count=3)])
        report = cross_validate([
            ("static", static, False, True),
            ("appsim", dynamic, False, False),
        ])
        violations = report.soundness_violations()
        assert len(violations) == 1
        assert violations[0].kind == SOUNDNESS_VIOLATION
        assert violations[0].feature == "write"
        assert "absent from static footprint" in violations[0].detail
        assert "SOUNDNESS" in render_cross_validation(report)

    def test_dynamic_leg_preferred_as_reference(self):
        static = _analyze([_op("read")])
        dynamic = _analyze([_op("read")])
        report = cross_validate([
            ("static", static, False, True),
            ("appsim", dynamic, False, False),
        ])
        assert report.reference == "appsim"
        report = cross_validate([
            ("static", static, False, True),
            ("real", dynamic, True, False),
            ("appsim", dynamic, False, False),
        ])
        assert report.reference == "real"

    def test_two_static_legs_compare_setwise(self):
        source = _analyze([_op("read")])
        binary = _analyze([_op("read"), _op("mmap")])
        report = cross_validate([
            ("static:source", source, False, True),
            ("static:binary", binary, False, True),
        ])
        kinds = {(d.kind, d.feature) for d in report.divergences}
        assert kinds == {(EXTRA_IN_SIM, "mmap")}
        assert "footprint" in report.divergences[0].detail

    def test_three_tuple_entries_still_accepted(self):
        result = _analyze([_op("read")])
        report = cross_validate([
            ("a", result, True),
            ("b", result, False, True),
        ])
        assert report.reference == "a"
        observations = {o.target: o for o in report.observations}
        assert not observations["a"].static_analysis
        assert observations["b"].static_analysis

    def test_static_flag_omitted_from_dict_when_false(self):
        result = _analyze([_op("read")])
        plain = TargetObservation.from_result("appsim", result)
        assert "static_analysis" not in plain.to_dict()
        flagged = TargetObservation.from_result(
            "static", result, static_analysis=True
        )
        assert flagged.to_dict()["static_analysis"] is True
        for observation in (plain, flagged):
            rebuilt = TargetObservation.from_dict(
                json.loads(json.dumps(observation.to_dict()))
            )
            assert rebuilt == observation
