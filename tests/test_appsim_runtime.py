"""Tests for the simulated process execution semantics."""

import pytest

from repro.appsim.backend import SimBackend
from repro.appsim.behavior import (
    abort,
    as_failure,
    breaks,
    breaks_core,
    disable,
    fallback,
    harmless,
    ignore,
    safe_default,
)
from repro.appsim.program import Origin, SimProgram, SyscallOp, WorkloadProfile
from repro.appsim.runtime import SimProcess, _deterministic_noise
from repro.core.policy import Action, combined, faking, passthrough, stubbing
from repro.core.workload import benchmark, health_check, test_suite
from repro.errors import BackendError, WorkloadError


def _program(ops, features=frozenset({"core"}), profiles=None):
    return SimProgram(
        name="rt-demo",
        version="1",
        ops=tuple(ops),
        features=features,
        profiles=profiles
        or {"*": WorkloadProfile(metric=1000.0, fd_peak=20, mem_peak_kb=1000)},
    )


def _op(syscall, **kwargs):
    kwargs.setdefault("on_stub", ignore())
    kwargs.setdefault("on_fake", harmless())
    return SyscallOp(syscall=syscall, **kwargs)


class TestTracing:
    def test_passthrough_traces_everything(self):
        program = _program([_op("read", count=5), _op("write", count=3)])
        run = SimProcess(program).run(health_check("health"), passthrough())
        assert run.success
        assert run.traced["read"] == 5
        assert run.traced["write"] == 3

    def test_stubbed_ops_still_traced(self):
        program = _program([_op("uname")])
        run = SimProcess(program).run(health_check("health"), stubbing("uname"))
        assert run.traced["uname"] == 1

    def test_subfeature_tracing(self):
        program = _program([_op("fcntl", subfeature="F_SETFL", count=2)])
        run = SimProcess(program).run(health_check("health"), passthrough())
        assert run.traced["fcntl"] == 2
        assert run.traced["fcntl:F_SETFL"] == 2

    def test_pseudofile_tracing(self):
        program = _program([_op("openat", path="/dev/urandom")])
        run = SimProcess(program).run(health_check("health"), passthrough())
        assert run.pseudo_files["/dev/urandom"] == 1

    def test_regular_path_not_pseudo(self):
        program = _program([_op("openat", path="/etc/app.conf")])
        run = SimProcess(program).run(health_check("health"), passthrough())
        assert not run.pseudo_files


class TestStubSemantics:
    def test_abort_fails_run(self):
        program = _program([_op("socket", on_stub=abort())])
        run = SimProcess(program).run(health_check("health"), stubbing("socket"))
        assert not run.success
        assert "fatal" in run.failure_reason

    def test_abort_stops_execution(self):
        program = _program(
            [_op("socket", on_stub=abort()), _op("write", count=9)]
        )
        run = SimProcess(program).run(health_check("health"), stubbing("socket"))
        assert "write" not in run.traced

    def test_disable_feature_checked_only_when_exercised(self):
        program = _program(
            [_op("pipe2", feature="persistence", on_stub=disable("persistence"))],
            features=frozenset({"core", "persistence"}),
        )
        health = SimProcess(program).run(health_check("health"), stubbing("pipe2"))
        assert health.success
        suite = SimProcess(program).run(
            test_suite("suite", features=("core", "persistence")),
            stubbing("pipe2"),
        )
        assert not suite.success
        assert "persistence" in suite.failure_reason

    def test_fallback_invokes_alternative_through_policy(self):
        mmap_op = _op("mmap", on_stub=abort())
        program = _program([_op("brk", on_stub=fallback(mmap_op))])
        run = SimProcess(program).run(health_check("health"), stubbing("brk"))
        assert run.success
        assert run.traced["mmap"] == 1
        both = SimProcess(program).run(
            health_check("health"), combined(stubs=["brk", "mmap"])
        )
        assert not both.success

    def test_fallback_not_traced_on_passthrough(self):
        mmap_op = _op("mmap", on_stub=abort())
        program = _program([_op("brk", on_stub=fallback(mmap_op))])
        run = SimProcess(program).run(health_check("health"), passthrough())
        assert "mmap" not in run.traced

    def test_safe_default_survives(self):
        program = _program([_op("prlimit64", on_stub=safe_default())])
        run = SimProcess(program).run(health_check("health"), stubbing("prlimit64"))
        assert run.success


class TestFakeSemantics:
    def test_harmless_fake(self):
        program = _program([_op("setsid", on_fake=harmless())])
        run = SimProcess(program).run(health_check("health"), faking("setsid"))
        assert run.success

    def test_breaks_core(self):
        program = _program([_op("writev", on_fake=breaks_core())])
        run = SimProcess(program).run(health_check("health"), faking("writev"))
        assert not run.success

    def test_breaks_feature_silently_for_unexercising_workload(self):
        program = _program(
            [_op("pipe2", feature="persistence",
                 on_fake=breaks("persistence"))],
            features=frozenset({"core", "persistence"}),
        )
        bench = SimProcess(program).run(health_check("health"), faking("pipe2"))
        assert bench.success
        suite = SimProcess(program).run(
            test_suite("suite", features=("core", "persistence")),
            faking("pipe2"),
        )
        assert not suite.success

    def test_as_failure_routes_to_stub_reaction(self):
        program = _program([_op("brk", on_stub=abort(), on_fake=as_failure())])
        run = SimProcess(program).run(health_check("health"), faking("brk"))
        assert not run.success


class TestMetrics:
    def test_perf_factors_multiply(self):
        program = _program(
            [
                _op("write", on_stub=ignore(perf_factor=1.15)),
                _op("rt_sigsuspend", on_stub=ignore(perf_factor=0.62)),
            ]
        )
        workload = benchmark("bench", metric_name="req/s")
        base = SimProcess(program).run(workload, passthrough())
        both = SimProcess(program).run(
            workload, combined(stubs=["write", "rt_sigsuspend"])
        )
        assert both.metric == pytest.approx(base.metric * 1.15 * 0.62, rel=0.02)

    def test_resource_fracs_accumulate(self):
        program = _program(
            [
                _op("close", on_stub=ignore(fd_frac=0.5)),
                _op("dup", on_stub=ignore(fd_frac=0.25)),
            ]
        )
        run = SimProcess(program).run(
            health_check("health"), combined(stubs=["close", "dup"])
        )
        assert run.resources.fd_peak == round(20 * 1.75)

    def test_metric_absent_without_performance_workload(self):
        program = _program([_op("read")])
        run = SimProcess(program).run(health_check("health"), passthrough())
        assert run.metric is None

    def test_noise_is_deterministic(self):
        a = _deterministic_noise("app", "bench", "p", "0", scale=0.01)
        b = _deterministic_noise("app", "bench", "p", "0", scale=0.01)
        c = _deterministic_noise("app", "bench", "p", "1", scale=0.01)
        assert a == b
        assert a != c
        assert abs(a) <= 0.01

    def test_replica_noise_bounded(self):
        program = _program([_op("read")])
        workload = benchmark("bench", metric_name="m")
        metrics = [
            SimProcess(program).run(workload, passthrough(), replica=i).metric
            for i in range(5)
        ]
        assert all(abs(m - 1000.0) <= 1000.0 * 0.004 + 1e-6 for m in metrics)
        assert len(set(metrics)) > 1


class TestValidation:
    def test_wrong_workload_type(self):
        from repro.core.workload import CommandWorkload, WorkloadKind

        program = _program([_op("read")])
        command = CommandWorkload(
            name="x", kind=WorkloadKind.HEALTH_CHECK, argv=("/bin/true",)
        )
        with pytest.raises(BackendError):
            SimProcess(program).run(command, passthrough())

    def test_unknown_feature_in_workload(self):
        program = _program([_op("read")])
        with pytest.raises(WorkloadError):
            SimProcess(program).run(
                test_suite("suite", features=("warp-drive",)), passthrough()
            )

    def test_backend_wrapper(self):
        program = _program([_op("read")])
        backend = SimBackend(program)
        assert backend.name == "sim:rt-demo-1"
        run = backend.run(health_check("health"), passthrough())
        assert run.success


class TestLibcOriginOps:
    def test_origin_recorded(self):
        op = _op("read", origin=Origin.LIBC)
        assert op.origin is Origin.LIBC
