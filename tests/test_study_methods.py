"""Tests for the Figure 4 analysis-method comparison."""

import pytest

from repro.study.methods import figure4, render_figure4


@pytest.fixture(scope="module")
def fig4(seven_app_set):
    return figure4(seven_app_set)


class TestFigure4Shape:
    def test_rows_cover_apps_and_workloads(self, fig4, seven_app_set):
        assert len(fig4.rows) == len(seven_app_set) * 2
        apps = {row.app for row in fig4.rows}
        assert apps == {a.name for a in seven_app_set}

    def test_static_exceeds_dynamic_everywhere(self, fig4):
        for row in fig4.rows:
            assert row.static_binary >= row.static_source
            assert row.static_source >= row.traced or row.workload == "suite"
            assert row.traced >= row.required

    def test_static_overestimation_factor(self, fig4):
        """Section 5.1: static reports "generally between 5x and 2x" the
        Loupe-required count (SQLite's tiny bench footprint overshoots)."""
        factors = [
            row.static_overestimation
            for row in fig4.rows
            if row.workload == "bench"
        ]
        assert all(2.0 <= factor <= 9.0 for factor in factors)
        mean = sum(factors) / len(factors)
        assert 2.0 <= mean <= 6.5

    def test_mean_avoidable_bench_sixty_percent(self, fig4):
        """Section 5.2: on average 60% of benchmark syscalls avoidable."""
        assert fig4.mean_avoidable_fraction("bench") == pytest.approx(0.60, abs=0.08)

    def test_mean_avoidable_suite_forty_six_percent(self, fig4):
        """Section 5.2: on average 46% of suite syscalls avoidable."""
        assert fig4.mean_avoidable_fraction("suite") == pytest.approx(0.46, abs=0.10)

    def test_suite_traces_more_than_bench(self, fig4, seven_app_set):
        for app in seven_app_set:
            bench = fig4.for_app(app.name, "bench")
            suite = fig4.for_app(app.name, "suite")
            assert suite.traced >= bench.traced
            assert suite.required >= bench.required

    def test_redis_headline(self, fig4):
        """Section 5.1: Redis 103 binary-static, ~68 suite-traced, ~42
        suite-required, ~20 bench-required."""
        suite = fig4.for_app("redis", "suite")
        bench = fig4.for_app("redis", "bench")
        assert suite.static_binary == 103
        assert 60 <= suite.traced <= 78
        assert 30 <= suite.required <= 48
        assert 14 <= bench.required <= 24

    def test_unknown_lookup(self, fig4):
        with pytest.raises(KeyError):
            fig4.for_app("redis", "fuzzing")

    def test_render(self, fig4):
        text = render_figure4(fig4)
        assert "redis" in text
        assert "mean avoidable" in text
